(* Semantic query rewriter tests: one unit test per pass on the paper's
   running example, adversarial no-op cases where a removal would change
   answers, engine wiring (binding re-attachment, profile/explain
   carriage, the ?rewrite toggle end to end), and JSON slug stability. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_str = Alcotest.(check string)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

let apply ?(open_objects = false) src =
  let e = Lazy.force engine in
  Amber.Rewrite.apply ~open_objects ~db:(Amber.Engine.db e)
    ~attribute:(Amber.Engine.attribute_index e)
    ~stats:(lazy (Amber.Engine.statistics e))
    (Fixtures.parse_query src)

let slugs_of (o : Amber.Rewrite.outcome) = Amber.Rewrite.slugs o.steps
let where_len (o : Amber.Rewrite.outcome) = List.length o.ast.Sparql.Ast.where

let canonical ?rewrite ast =
  Baselines.Reference_eval.canonical_rows
    (Amber.Engine.query ?rewrite (Lazy.force engine) ast).Amber.Engine.rows

(* Rewriting must be invisible in the canonical answer set — asserted by
   every test below on top of its structural expectations. *)
let check_identity src =
  let ast = Fixtures.parse_query src in
  Alcotest.(check (list (list string)))
    "rewrite on/off answers agree"
    (canonical ~rewrite:false ast)
    (canonical ~rewrite:true ast)

(* --- the passes -------------------------------------------------------- *)

let test_duplicate_removed () =
  let src =
    Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|} (y "livedIn")
      (y "livedIn")
  in
  let o = apply src in
  checkb "duplicate-pattern step" true
    (List.mem "duplicate-pattern" (slugs_of o));
  checki "one pattern left" 1 (where_len o);
  check_identity src

let test_core_minimization_fires () =
  (* ?b and ?c are unprotected under DISTINCT ?a; folding ?c into ?b
     maps the clause into itself minus the second pattern. *)
  let src =
    Printf.sprintf {|SELECT DISTINCT ?a WHERE { ?a <%s> ?b . ?a <%s> ?c }|}
      (y "livedIn") (y "livedIn")
  in
  let o = apply src in
  checkb "core-minimization step" true
    (List.mem "core-minimization" (slugs_of o));
  checki "one pattern left" 1 (where_len o);
  check_identity src

let test_minimization_needs_distinct () =
  (* Same clause without DISTINCT: removal would change embedding
     multiplicities, so the pass must not run. *)
  let src =
    Printf.sprintf {|SELECT ?a WHERE { ?a <%s> ?b . ?a <%s> ?c }|}
      (y "livedIn") (y "livedIn")
  in
  let o = apply src in
  checkb "no core-minimization" false
    (List.mem "core-minimization" (slugs_of o));
  checki "both patterns survive" 2 (where_len o)

let test_select_star_protects_everything () =
  let src =
    Printf.sprintf {|SELECT DISTINCT * WHERE { ?a <%s> ?b . ?a <%s> ?c }|}
      (y "livedIn") (y "livedIn")
  in
  let o = apply src in
  checkb "no core-minimization" false
    (List.mem "core-minimization" (slugs_of o));
  checki "both patterns survive" 2 (where_len o)

let test_constant_propagation () =
  (* Only London isPartOf England, so ?m is data-forced. *)
  let src =
    Printf.sprintf {|SELECT ?m ?p WHERE { ?m <%s> <%s> . ?p <%s> ?m }|}
      (y "isPartOf") (x "England") (y "wasBornIn")
  in
  let o = apply src in
  checkb "constant-propagation step" true
    (List.mem "constant-propagation" (slugs_of o));
  checkb "?m bound to London" true
    (List.assoc_opt "m" o.bindings = Some (Rdf.Term.iri (x "London")));
  checkb "?m gone from the clause" true
    (not (List.mem "m" (Sparql.Ast.variables o.ast)));
  check_identity src

let test_constant_propagation_literal () =
  (* The (hasName, "MCA_Band") posting has exactly one vertex. *)
  let src =
    Printf.sprintf {|SELECT ?v ?w WHERE { ?v <%s> "MCA_Band" . ?v <%s> ?w }|}
      (y "hasName") (y "wasFormedIn")
  in
  let o = apply src in
  checkb "constant-propagation step" true
    (List.mem "constant-propagation" (slugs_of o));
  checkb "?v bound to Music_Band" true
    (List.assoc_opt "v" o.bindings = Some (Rdf.Term.iri (x "Music_Band")));
  check_identity src

let test_open_objects_skips_adjacency_singleton () =
  (* <England> hasCapital ?c is forced in the faithful model. With open
     objects the rewriter runs hint-only: literal bindings there are
     selected by clause shape (occurrence counts, ground vs variable
     subject), so mutating the clause could change answers. (A second
     variable keeps the clause from going fully ground, which would
     veto the substitution in the faithful case.) *)
  let src =
    Printf.sprintf {|SELECT ?c ?s WHERE { <%s> <%s> ?c . ?c <%s> ?s }|}
      (x "England") (y "hasCapital") (y "hasStadium")
  in
  checkb "faithful model propagates" true
    (List.mem "constant-propagation" (slugs_of (apply src)));
  let o = apply ~open_objects:true src in
  checkb "open objects must not" false
    (List.mem "constant-propagation" (slugs_of o));
  checki "open objects leaves the clause untouched" 2 (where_len o)

let test_cartesian_hint () =
  let src =
    Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?c <%s> ?d }|}
      (y "livedIn") (y "wasBornIn")
  in
  let o = apply src in
  checkb "cartesian-product step" true
    (List.mem "cartesian-product" (slugs_of o));
  checki "clause untouched" 2 (where_len o);
  (match
     List.find_map
       (fun (s : Amber.Rewrite.step) ->
         match s.Amber_rewrite.kind with
         | Amber_rewrite.Cartesian_product { components; estimated_rows } ->
             Some (components, estimated_rows)
         | _ -> None)
       o.steps
   with
  | Some (components, estimated) ->
      checki "two components" 2 components;
      checkb "blow-up estimate present" true (estimated <> None)
  | None -> Alcotest.fail "expected a cartesian-product step");
  check_identity src

(* --- adversarial no-ops ------------------------------------------------ *)

let no_op src =
  let o = apply src in
  checki "no steps" 0 (List.length o.steps);
  checki "clause untouched"
    (List.length (Fixtures.parse_query src).Sparql.Ast.where)
    (where_len o)

let test_cyclic_nothing_removable () =
  (* A 3-cycle with one protected vertex: no self-homomorphism fixing
     ?a maps the cycle into any 2-pattern subset. *)
  let knows = "http://xmlns.com/foaf/0.1/knows" in
  let e = Amber.Engine.build Fixtures.social_triples in
  let ast =
    Fixtures.parse_query
      (Printf.sprintf
         {|SELECT DISTINCT ?a WHERE { ?a <%s> ?b . ?b <%s> ?c . ?c <%s> ?a }|}
         knows knows knows)
  in
  let o =
    Amber.Rewrite.apply ~db:(Amber.Engine.db e)
      ~attribute:(Amber.Engine.attribute_index e)
      ~stats:(lazy (Amber.Engine.statistics e))
      ast
  in
  checki "no steps" 0 (List.length o.steps);
  checki "cycle intact" 3 (List.length o.ast.Sparql.Ast.where)

let test_projected_variables_survive () =
  (* Folding ?b or ?c would erase a projected variable. *)
  no_op
    (Printf.sprintf
       {|SELECT DISTINCT ?a ?b ?c WHERE { ?a <%s> ?b . ?a <%s> ?c }|}
       (y "livedIn") (y "livedIn"))

let test_order_by_key_survives () =
  (* ?c is not projected but keys the sort, so it is protected: the
     only legal fold sends ?b into ?c, never the other way round. *)
  let src =
    Printf.sprintf
      {|SELECT DISTINCT ?a WHERE { ?a <%s> ?b . ?a <%s> ?c } ORDER BY ?c|}
      (y "livedIn") (y "livedIn")
  in
  let o = apply src in
  checkb "?c survives the fold" true
    (List.mem "c" (Sparql.Ast.variables o.ast));
  let ast = Fixtures.parse_query src in
  let e = Lazy.force engine in
  checkb "row order identical with and without the rewrite" true
    ((Amber.Engine.query e ast).Amber.Engine.rows
    = (Amber.Engine.query ~rewrite:false e ast).Amber.Engine.rows)

let test_multi_edge_no_op () =
  (* A width-2 multi-edge: both patterns constrain the same vertex pair
     through different predicates, so neither folds into the other. *)
  no_op
    (Printf.sprintf {|SELECT DISTINCT ?a WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
       (y "wasBornIn") (y "diedIn"))

(* --- engine wiring ----------------------------------------------------- *)

let test_binding_reattached () =
  (* Constant propagation removes ?m from the clause; the projected rows
     must still carry its forced value in the right column. *)
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT ?p ?m WHERE { ?m <%s> <%s> . ?p <%s> ?m }|}
         (y "isPartOf") (x "England") (y "wasBornIn"))
  in
  let a = Amber.Engine.query (Lazy.force engine) ast in
  checkb "some rows" true (a.Amber.Engine.rows <> []);
  List.iter
    (fun row ->
      match row with
      | [ Some _; Some m ] ->
          checkb "?m column is London" true (m = Rdf.Term.iri (x "London"))
      | _ -> Alcotest.fail "expected two bound columns")
    a.Amber.Engine.rows;
  Alcotest.(check (list (list string)))
    "identical to the unrewritten run"
    (canonical ~rewrite:false ast)
    (canonical ~rewrite:true ast)

let test_profile_carries_steps () =
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
         (y "livedIn") (y "livedIn"))
  in
  let _, p = Amber.Engine.query_profiled (Lazy.force engine) ast in
  checkb "profile lists the duplicate removal" true
    (List.mem "duplicate-pattern" (Amber.Rewrite.slugs p.Amber.Profile.rewrites));
  let _, p0 =
    Amber.Engine.query_profiled ~rewrite:false (Lazy.force engine) ast
  in
  checki "rewrite=off profiles no steps" 0
    (List.length p0.Amber.Profile.rewrites)

let test_explain_carries_steps () =
  let ast =
    Fixtures.parse_query
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
         (y "livedIn") (y "livedIn"))
  in
  (match Amber.Engine.explain (Lazy.force engine) ast with
  | Amber.Engine.Plan { rewrites; _ } ->
      checkb "explain lists the duplicate removal" true
        (List.mem "duplicate-pattern" (Amber.Rewrite.slugs rewrites))
  | Amber.Engine.Unsat _ -> Alcotest.fail "expected a plan");
  match Amber.Engine.explain ~rewrite:false (Lazy.force engine) ast with
  | Amber.Engine.Plan { rewrites; _ } ->
      checki "rewrite=off explains no steps" 0 (List.length rewrites)
  | Amber.Engine.Unsat _ -> Alcotest.fail "expected a plan"

let test_endpoint_toggle () =
  let config = { Endpoint.default_config with timeout = Some 5.0 } in
  let handle target =
    Endpoint.handle_request config
      (Endpoint.Static (Lazy.force engine))
      ~meth:"GET" ~target ~headers:[] ~body:""
  in
  let encode s =
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> String.make 1 c
           | c -> Printf.sprintf "%%%02X" (Char.code c))
         (List.init (String.length s) (String.get s)))
  in
  let q =
    encode
      (Printf.sprintf {|SELECT ?p WHERE { ?p <%s> ?c . ?p <%s> ?c }|}
         (y "wasBornIn") (y "wasBornIn"))
  in
  let s_on, _, b_on = handle ("/sparql?query=" ^ q ^ "&rewrite=on") in
  let s_off, _, b_off = handle ("/sparql?query=" ^ q ^ "&rewrite=off") in
  checki "rewrite=on answers" 200 s_on;
  checki "rewrite=off answers" 200 s_off;
  check_str "identical bodies" b_on b_off;
  let s_bad, _, b_bad = handle ("/sparql?query=" ^ q ^ "&rewrite=maybe") in
  checki "unknown value is a 400" 400 s_bad;
  checkb "names the bad value" true
    (let n = String.length "maybe" and h = String.length b_bad in
     let rec loop i =
       i + n <= h && (String.sub b_bad i n = "maybe" || loop (i + 1))
     in
     loop 0)

let test_metric_bumped () =
  let c =
    Obs.Metrics.counter
      ~labels:[ ("kind", "duplicate-pattern") ]
      Obs.Metrics.default "amber_rewrite_steps_total"
  in
  let before = Obs.Metrics.counter_value c in
  ignore
    (apply
       (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
          (y "livedIn") (y "livedIn")));
  checkb "counter advanced" true (Obs.Metrics.counter_value c > before)

(* --- renderings -------------------------------------------------------- *)

let test_json_slugs_stable () =
  check_str "duplicate slug" "duplicate-pattern"
    (Amber.Rewrite.kind_slug
       (Amber_rewrite.Duplicate_pattern { first = 0; dup = 1 }));
  check_str "minimization slug" "core-minimization"
    (Amber.Rewrite.kind_slug
       (Amber_rewrite.Core_minimization { removed = 1; folded = [] }));
  check_str "propagation slug" "constant-propagation"
    (Amber.Rewrite.kind_slug
       (Amber_rewrite.Constant_propagation { variable = "v"; value = "<u>" }));
  check_str "cartesian slug" "cartesian-product"
    (Amber.Rewrite.kind_slug
       (Amber_rewrite.Cartesian_product
          { components = 2; estimated_rows = None }));
  let o =
    apply
      (Printf.sprintf {|SELECT * WHERE { ?a <%s> ?b . ?a <%s> ?b }|}
         (y "livedIn") (y "livedIn"))
  in
  let json = Amber.Rewrite.steps_to_json o.steps in
  let contains sub =
    let n = String.length sub and h = String.length json in
    let rec loop i = i + n <= h && (String.sub json i n = sub || loop (i + 1)) in
    loop 0
  in
  checkb "kind field" true (contains {|"kind":"duplicate-pattern"|});
  checkb "span text" true (contains {|"pattern":|})

let suite =
  [
    ( "amber.rewrite",
      [
        Alcotest.test_case "duplicate removed" `Quick test_duplicate_removed;
        Alcotest.test_case "core minimization fires" `Quick
          test_core_minimization_fires;
        Alcotest.test_case "minimization needs DISTINCT" `Quick
          test_minimization_needs_distinct;
        Alcotest.test_case "SELECT * protects everything" `Quick
          test_select_star_protects_everything;
        Alcotest.test_case "constant propagation (iri)" `Quick
          test_constant_propagation;
        Alcotest.test_case "constant propagation (literal)" `Quick
          test_constant_propagation_literal;
        Alcotest.test_case "open objects skip adjacency singleton" `Quick
          test_open_objects_skips_adjacency_singleton;
        Alcotest.test_case "cartesian hint" `Quick test_cartesian_hint;
        Alcotest.test_case "cyclic BGP: nothing removable" `Quick
          test_cyclic_nothing_removable;
        Alcotest.test_case "projected variables survive" `Quick
          test_projected_variables_survive;
        Alcotest.test_case "order-by key survives" `Quick
          test_order_by_key_survives;
        Alcotest.test_case "multi-edge no-op" `Quick test_multi_edge_no_op;
        Alcotest.test_case "forced binding re-attached" `Quick
          test_binding_reattached;
        Alcotest.test_case "profile carries steps" `Quick
          test_profile_carries_steps;
        Alcotest.test_case "explain carries steps" `Quick
          test_explain_carries_steps;
        Alcotest.test_case "endpoint ?rewrite toggle" `Quick
          test_endpoint_toggle;
        Alcotest.test_case "metric bumped" `Quick test_metric_bumped;
        Alcotest.test_case "json slugs stable" `Quick test_json_slugs_stable;
      ] );
  ]
