(* Turtle input and the extended SPARQL algebra (UNION / OPTIONAL /
   FILTER) — the paper's §8 "other SPARQL operations", implemented on
   top of the AMbER engine.

   Run with: dune exec examples/extended_queries.exe *)

let turtle_data =
  {|@prefix ex: <http://books.example/> .

    ex:dune a ex:Novel ;
      ex:title "Dune" ;
      ex:author ex:herbert ;
      ex:year 1965 ;
      ex:pages 412 .

    ex:neuromancer a ex:Novel ;
      ex:title "Neuromancer" ;
      ex:author ex:gibson ;
      ex:year 1984 ;
      ex:pages 271 .

    ex:burning_chrome a ex:Stories ;
      ex:title "Burning Chrome" ;
      ex:author ex:gibson ;
      ex:year 1986 .

    ex:herbert ex:name "Frank Herbert" ;
      ex:bornIn ex:tacoma .
    ex:gibson ex:name "William Gibson" ;
      ex:bornIn ex:conway ;
      ex:livesIn ex:vancouver .
  |}

let show title (answer : Amber.Engine.answer) =
  Printf.printf "\n-- %s\n%s\n" title
    (String.concat " | " answer.variables);
  List.iter
    (fun row ->
      print_endline
        ("  "
        ^ String.concat " | "
            (List.map
               (function
                 | Some t -> Rdf.Term.to_string t
                 | None -> "<unbound>")
               row)))
    answer.rows

let () =
  let triples = Rdf.Turtle.parse_string turtle_data in
  Printf.printf "Parsed %d triples from Turtle.\n" (List.length triples);
  let engine = Amber.Engine.build triples in
  let run ?(open_objects = true) src =
    Amber.Extended.query_string ~open_objects engine src
  in

  show "novels OR story collections (UNION)"
    (run
       {|PREFIX ex: <http://books.example/>
         SELECT ?work WHERE {
           { ?work a ex:Novel } UNION { ?work a ex:Stories }
         }|});

  show "authors and, when known, where they live (OPTIONAL)"
    (run
       {|PREFIX ex: <http://books.example/>
         SELECT ?author ?city WHERE {
           ?work ex:author ?author .
           OPTIONAL { ?author ex:livesIn ?city }
         }|});

  show "books from before 1980 (FILTER on a literal variable)"
    (run
       {|PREFIX ex: <http://books.example/>
         SELECT ?title ?year WHERE {
           ?work ex:title ?title .
           ?work ex:year ?year .
           FILTER(?year < 1980)
         }|});

  show "gibson's works without a page count (OPTIONAL + !BOUND)"
    (run
       {|PREFIX ex: <http://books.example/>
         SELECT ?title WHERE {
           ?work ex:author ex:gibson .
           ?work ex:title ?title .
           OPTIONAL { ?work ex:pages ?p }
           FILTER(!BOUND(?p))
         }|});

  show "titles matching a regex"
    (run
       {|PREFIX ex: <http://books.example/>
         SELECT ?title WHERE {
           ?work ex:title ?title .
           FILTER(REGEX(?title, "^.u"))
         }|})
