(* Quickstart: build an AMbER engine from a handful of triples and run
   a SPARQL query — the paper's running example (Figures 1 and 2).

   Run with: dune exec examples/quickstart.exe *)

let data =
  {|<http://ex/London> <http://ex/isPartOf> <http://ex/England> .
<http://ex/England> <http://ex/hasCapital> <http://ex/London> .
<http://ex/Christopher_Nolan> <http://ex/wasBornIn> <http://ex/London> .
<http://ex/Christopher_Nolan> <http://ex/livedIn> <http://ex/England> .
<http://ex/London> <http://ex/hasStadium> <http://ex/WembleyStadium> .
<http://ex/WembleyStadium> <http://ex/hasCapacityOf> "90000" .
<http://ex/Amy_Winehouse> <http://ex/wasBornIn> <http://ex/London> .
<http://ex/Amy_Winehouse> <http://ex/diedIn> <http://ex/London> .
<http://ex/Amy_Winehouse> <http://ex/wasPartOf> <http://ex/Music_Band> .
<http://ex/Music_Band> <http://ex/hasName> "MCA_Band" .
<http://ex/Music_Band> <http://ex/wasFormedIn> <http://ex/London> .|}

let query =
  {|PREFIX ex: <http://ex/>
    SELECT ?person ?band WHERE {
      ?person ex:wasBornIn ?city .
      ?person ex:diedIn ?city .
      ?person ex:wasPartOf ?band .
      ?band ex:hasName "MCA_Band" .
      ?band ex:wasFormedIn ?city .
      ?city ex:hasStadium ?stadium .
      ?stadium ex:hasCapacityOf "90000" .
    }|}

let () =
  (* 1. Parse N-Triples. *)
  let triples = Rdf.Ntriples.parse_string data in
  Printf.printf "Loaded %d triples.\n" (List.length triples);

  (* 2. Offline stage: multigraph transformation + indexes A, S, N. *)
  let engine = Amber.Engine.build triples in
  Format.printf "%a@." Amber.Database.pp_stats (Amber.Engine.db engine);

  (* 3. Online stage: answer a SPARQL query. *)
  let answer = Amber.Engine.query_string engine query in
  Printf.printf "\n%s\n\nResults:\n" (String.concat ", " answer.variables);
  List.iter
    (fun row ->
      let cell = function
        | Some term -> Rdf.Term.to_string term
        | None -> "<unbound>"
      in
      print_endline ("  " ^ String.concat "  " (List.map cell row)))
    answer.rows;
  Printf.printf "(%d rows)\n" (List.length answer.rows)
