(* Robustness mini-study on a scale-free "social" graph: generate star
   and complex query workloads of growing size (the paper's Section 7.2
   protocol) and watch each engine's answered fraction under a time
   budget.

   Run with: dune exec examples/social_network.exe *)

let () =
  let profile = Datagen.Scale_free.dbpedia_like ~scale:0.05 () in
  let triples = Datagen.Scale_free.generate ~seed:99 profile in
  Printf.printf "Scale-free graph: %d triples.\n%!" (List.length triples);
  let corpus = Datagen.Workload.corpus triples in

  let amber = Baselines.Amber_adapter.load triples in
  let ts = Baselines.Triple_store.load triples in
  let nl = Baselines.Nested_loop.load triples in
  let timeout = 0.5 in

  let run_one (name, run) queries =
    let answered = ref 0 and total_time = ref 0.0 in
    List.iter
      (fun ast ->
        match Bench_util.Runner.time (fun () -> run ast) with
        | dt, _ ->
            incr answered;
            total_time := !total_time +. dt
        | exception Amber.Deadline.Expired -> ())
      queries;
    Printf.printf "    %-12s answered %d/%d, mean %.1f ms\n%!" name !answered
      (List.length queries)
      (if !answered = 0 then 0.0 else 1000.0 *. !total_time /. float_of_int !answered)
  in

  List.iter
    (fun (shape, shape_name) ->
      Printf.printf "\n%s queries:\n" shape_name;
      List.iter
        (fun size ->
          let queries =
            Datagen.Workload.generate ~seed:(size * 7) corpus ~shape ~size ~count:8
          in
          Printf.printf "  size %d (%d queries)\n" size (List.length queries);
          run_one
            ("amber", fun ast -> Baselines.Amber_adapter.query ~timeout ~limit:5000 amber ast)
            queries;
          run_one
            ("x-rdf3x", fun ast -> Baselines.Triple_store.query ~timeout ~limit:5000 ts ast)
            queries;
          run_one
            ("jena", fun ast -> Baselines.Nested_loop.query ~timeout ~limit:5000 nl ast)
            queries)
        [ 5; 10; 20 ])
    [ (Datagen.Workload.Star, "Star"); (Datagen.Workload.Complex, "Complex") ]
