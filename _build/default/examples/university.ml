(* LUBM-style workload: generate a university dataset, run classic
   LUBM-ish queries on AMbER, and cross-check the answers (and the
   timing) against the x-RDF-3X-style baseline.

   Run with: dune exec examples/university.exe *)

let ub l = "http://swat.lehigh.edu/onto/univ-bench.owl#" ^ l

let queries =
  [
    ( "students advised by a professor of their own department",
      Printf.sprintf
        {|SELECT ?student ?prof ?dept WHERE {
            ?student <%s> ?prof .
            ?prof <%s> ?dept .
            ?student <%s> ?dept .
          }|}
        (ub "advisor") (ub "worksFor") (ub "memberOf") );
    ( "teaching assistants of courses taught by their advisor",
      Printf.sprintf
        {|SELECT ?ta ?course WHERE {
            ?ta <%s> ?course .
            ?ta <%s> ?prof .
            ?prof <%s> ?course .
          }|}
        (ub "teachingAssistantOf") (ub "advisor") (ub "teacherOf") );
    ( "co-authors (publication with two authors)",
      Printf.sprintf
        {|SELECT DISTINCT ?a ?b WHERE {
            ?pub <%s> ?a .
            ?pub <%s> ?b .
            ?a <%s> ?d .
            ?b <%s> ?d .
          }|}
        (ub "publicationAuthor") (ub "publicationAuthor") (ub "worksFor")
        (ub "memberOf") );
    ( "department heads and where they studied",
      Printf.sprintf
        {|SELECT ?prof ?dept ?university WHERE {
            ?prof <%s> ?dept .
            ?prof <%s> ?university .
          }|}
        (ub "headOf") (ub "doctoralDegreeFrom") );
  ]

let () =
  let triples = Datagen.Lubm.generate ~universities:1 () in
  Printf.printf "Generated %d LUBM-style triples.\n" (List.length triples);

  let build_time, amber =
    Bench_util.Runner.time (fun () -> Amber.Engine.build triples)
  in
  Printf.printf "AMbER offline stage: %.2fs\n" build_time;
  let ts = Baselines.Triple_store.load triples in

  List.iter
    (fun (title, src) ->
      let ast = Sparql.Parser.parse src in
      let t_amber, a = Bench_util.Runner.time (fun () -> Amber.Engine.query amber ast) in
      let t_ts, b =
        Bench_util.Runner.time (fun () -> Baselines.Triple_store.query ts ast)
      in
      let rows_a = List.length a.Amber.Engine.rows in
      let rows_b = List.length b.Baselines.Answer.rows in
      Printf.printf "\n%s\n  amber: %4d rows in %6.2f ms | x-rdf3x-like: %4d rows in %6.2f ms%s\n"
        title rows_a (1000. *. t_amber) rows_b (1000. *. t_ts)
        (if rows_a = rows_b then "" else "  <-- MISMATCH");
      (* Print a couple of sample rows. *)
      List.iteri
        (fun i row ->
          if i < 2 then
            print_endline
              ("    "
              ^ String.concat " | "
                  (List.map
                     (function
                       | Some term -> Rdf.Term.to_string term
                       | None -> "<unbound>")
                     row)))
        a.Amber.Engine.rows)
    queries
