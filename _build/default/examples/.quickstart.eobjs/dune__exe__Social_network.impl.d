examples/social_network.ml: Amber Baselines Bench_util Datagen List Printf
