examples/university.mli:
