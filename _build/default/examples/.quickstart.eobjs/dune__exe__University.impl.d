examples/university.ml: Amber Baselines Bench_util Datagen List Printf Rdf Sparql String
