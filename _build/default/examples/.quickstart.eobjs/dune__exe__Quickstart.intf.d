examples/quickstart.mli:
