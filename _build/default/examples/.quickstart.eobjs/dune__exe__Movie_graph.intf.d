examples/movie_graph.mli:
