examples/extended_queries.ml: Amber List Printf Rdf String
