examples/quickstart.ml: Amber Format List Printf Rdf String
