examples/movie_graph.ml: Amber Array Format Lazy List Printf Rdf Sparql String
