examples/extended_queries.mli:
