(** Query workload generation (paper Section 7.2).

    Queries are carved out of the dataset itself, so they are satisfiable
    by construction. Star-shaped queries pick an initial entity with at
    least [size] incident triples and keep [size] of them; complex-shaped
    queries random-walk the neighbourhood of the initial entity through
    predicate links until [size] triples are collected. Literal objects
    are injected as constants; entities that touch only one selected
    triple may stay as constant IRIs (probability [iri_rate]); every
    other entity becomes a variable. *)

type shape = Star | Complex

type corpus
(** Preprocessed dataset: per-entity incidence lists. *)

val corpus : Rdf.Triple.t list -> corpus

val entity_count : corpus -> int

val generate :
  ?seed:int ->
  ?iri_rate:float ->
  corpus ->
  shape:shape ->
  size:int ->
  count:int ->
  Sparql.Ast.t list
(** [generate c ~shape ~size ~count] — [count] queries of exactly [size]
    triple patterns ([SELECT *], no DISTINCT/LIMIT). Entities unable to
    seed a query of the requested size are re-drawn; gives up on a seed
    after enough failures, so fewer than [count] queries can be returned
    on very small datasets. [iri_rate] defaults to 0.15. *)
