(** Deterministic pseudo-random numbers (SplitMix64).

    All generators and workloads take an explicit seed so every dataset,
    query set and benchmark run is reproducible bit-for-bit. *)

type t

val create : int -> t
(** [create seed]. Distinct seeds give independent streams. *)

val next : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0 .. bound-1]. [bound] must be > 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample : t -> 'a array -> int -> 'a list
(** [sample t arr k] — [k] distinct elements (Fisher–Yates on a copy);
    [k] is clamped to the array length. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0 .. n-1] with exponent [s] (by inverse
    transform on the truncated harmonic CDF; heavier head for larger
    [s]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
