type spec = {
  name : string;
  description : string;
  load : unit -> Rdf.Triple.t list;
}

let dbpedia_like ?(scale = 1.0) ?(seed = 11) () =
  {
    name = "dbpedia-like";
    description =
      Printf.sprintf
        "scale-free multigraph, many predicates, heavy skew (scale %.2f)" scale;
    load = (fun () -> Scale_free.generate ~seed (Scale_free.dbpedia_like ~scale ()));
  }

let yago_like ?(scale = 1.0) ?(seed = 13) () =
  {
    name = "yago-like";
    description =
      Printf.sprintf "scale-free multigraph, 44 predicates (scale %.2f)" scale;
    load = (fun () -> Scale_free.generate ~seed (Scale_free.yago_like ~scale ()));
  }

let lubm ?(universities = 3) ?(seed = 17) () =
  {
    name = Printf.sprintf "lubm%d" universities;
    description = Printf.sprintf "LUBM-style, %d universities" universities;
    load = (fun () -> Lubm.generate ~seed ~universities ());
  }

let all ?(scale = 1.0) () =
  [
    dbpedia_like ~scale ();
    yago_like ~scale ();
    lubm ~universities:(max 1 (int_of_float (3.0 *. scale))) ();
  ]
