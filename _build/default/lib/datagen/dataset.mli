(** Named benchmark datasets: the three corpora of the paper's Section 7
    (DBPEDIA, YAGO, LUBM100) at configurable scale. *)

type spec = {
  name : string;
  description : string;
  load : unit -> Rdf.Triple.t list;
}

val dbpedia_like : ?scale:float -> ?seed:int -> unit -> spec
val yago_like : ?scale:float -> ?seed:int -> unit -> spec

val lubm : ?universities:int -> ?seed:int -> unit -> spec
(** Default 3 universities (≈ 35 k triples). *)

val all : ?scale:float -> unit -> spec list
(** The three datasets at a common scale factor (LUBM's university count
    scales proportionally, minimum 1). *)
