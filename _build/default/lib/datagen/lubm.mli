(** LUBM-style university benchmark data generator.

    Re-implements the shape of the Lehigh University Benchmark data:
    universities containing departments, faculty, students, courses and
    publications, linked by the usual LUBM object properties (13 — the
    edge-type count the paper reports for LUBM100 in Table 4) plus
    datatype properties (name, email, telephone, research interest)
    that AMbER folds into vertex attributes.

    Object properties and datatype properties are strictly disjoint, so
    a variable in object position can only ever bind to an IRI — keeping
    all engines' semantics aligned (see DESIGN.md §4). *)

val namespace : string
(** Base IRI of the generated vocabulary. *)

val object_properties : string list
(** The 13 object property IRIs. *)

val datatype_properties : string list

val generate : ?seed:int -> universities:int -> unit -> Rdf.Triple.t list
(** Deterministic for a given [seed] (default 42). One university emits
    roughly 8–10 k triples. *)
