type shape = Star | Complex

type item =
  | Structural of { s : string; p : string; o : string }
  | Lit_triple of { s : string; p : string; lit : Rdf.Term.literal }

let item_key = function
  | Structural { s; p; o } -> s ^ "\x00" ^ p ^ "\x00" ^ o
  | Lit_triple { s; p; lit } ->
      s ^ "\x00" ^ p ^ "\x01" ^ Rdf.Term.to_string (Rdf.Term.Literal lit)

type corpus = {
  incidence : (string, item array) Hashtbl.t;
  entities : string array;
}

let corpus triples =
  let lists : (string, item list) Hashtbl.t = Hashtbl.create 4096 in
  let push entity item =
    Hashtbl.replace lists entity
      (item :: Option.value ~default:[] (Hashtbl.find_opt lists entity))
  in
  List.iter
    (fun { Rdf.Triple.subject; predicate; obj } ->
      match (subject, predicate, obj) with
      | Rdf.Term.Iri s, Rdf.Term.Iri p, Rdf.Term.Iri o ->
          let item = Structural { s; p; o } in
          push s item;
          if not (String.equal s o) then push o item
      | Rdf.Term.Iri s, Rdf.Term.Iri p, Rdf.Term.Literal lit ->
          push s (Lit_triple { s; p; lit })
      | _ -> () (* blank nodes are not used as workload seeds *))
    triples;
  let incidence = Hashtbl.create (Hashtbl.length lists) in
  let entities = ref [] in
  Hashtbl.iter
    (fun entity items ->
      entities := entity :: !entities;
      Hashtbl.replace incidence entity (Array.of_list items))
    lists;
  { incidence; entities = Array.of_list !entities }

let entity_count c = Array.length c.entities

let incident c entity =
  Option.value ~default:[||] (Hashtbl.find_opt c.incidence entity)

(* Degree of each entity within the selected item set. *)
let selection_degrees items =
  let deg = Hashtbl.create 16 in
  let bump entity =
    Hashtbl.replace deg entity
      (1 + Option.value ~default:0 (Hashtbl.find_opt deg entity))
  in
  List.iter
    (function
      | Structural { s; o; _ } ->
          bump s;
          if not (String.equal s o) then bump o
      | Lit_triple { s; _ } -> bump s)
    items;
  deg

(* Turn a selected item set into a SELECT * query. *)
let assemble rng ~iri_rate ~seed_entity items =
  let degrees = selection_degrees items in
  let terms = Hashtbl.create 16 in
  let counter = ref 0 in
  let term_of entity =
    match Hashtbl.find_opt terms entity with
    | Some t -> t
    | None ->
        let degree = Option.value ~default:0 (Hashtbl.find_opt degrees entity) in
        let keep_constant =
          (not (String.equal entity seed_entity))
          && degree <= 1 && Prng.bool rng iri_rate
        in
        let t =
          if keep_constant then Sparql.Ast.Iri entity
          else begin
            let v = Printf.sprintf "X%d" !counter in
            incr counter;
            Sparql.Ast.Var v
          end
        in
        Hashtbl.add terms entity t;
        t
  in
  let patterns =
    List.map
      (function
        | Structural { s; p; o } ->
            Sparql.Ast.pattern (term_of s) (Sparql.Ast.Iri p) (term_of o)
        | Lit_triple { s; p; lit } ->
            Sparql.Ast.pattern (term_of s) (Sparql.Ast.Iri p) (Sparql.Ast.Lit lit))
      items
  in
  Sparql.Ast.make Sparql.Ast.Select_all patterns

let try_star rng c size =
  let seed_entity = Prng.choice rng c.entities in
  let items = incident c seed_entity in
  if Array.length items < size then None
  else Some (seed_entity, Prng.sample rng items size)

let try_complex rng c size =
  let seed_entity = Prng.choice rng c.entities in
  let visited = ref [ seed_entity ] in
  let used = Hashtbl.create size in
  let selected = ref [] in
  let selected_count = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 40 * size in
  while !selected_count < size && !attempts < max_attempts do
    incr attempts;
    let entity = List.nth !visited (Prng.int rng (List.length !visited)) in
    let items = incident c entity in
    if Array.length items > 0 then begin
      let item = Prng.choice rng items in
      let key = item_key item in
      if not (Hashtbl.mem used key) then begin
        Hashtbl.add used key ();
        selected := item :: !selected;
        incr selected_count;
        match item with
        | Structural { s; o; _ } ->
            if not (List.mem s !visited) then visited := s :: !visited;
            if not (List.mem o !visited) then visited := o :: !visited
        | Lit_triple _ -> ()
      end
    end
  done;
  if !selected_count = size then Some (seed_entity, List.rev !selected) else None

let generate ?(seed = 1) ?(iri_rate = 0.15) c ~shape ~size ~count =
  if size < 1 then invalid_arg "Workload.generate: size must be >= 1";
  let rng = Prng.create seed in
  let queries = ref [] in
  let produced = ref 0 and failures = ref 0 in
  let max_failures = 200 * count in
  while !produced < count && !failures < max_failures do
    let attempt =
      match shape with
      | Star -> try_star rng c size
      | Complex -> try_complex rng c size
    in
    match attempt with
    | None -> incr failures
    | Some (seed_entity, items) ->
        queries := assemble rng ~iri_rate ~seed_entity items :: !queries;
        incr produced
  done;
  List.rev !queries
