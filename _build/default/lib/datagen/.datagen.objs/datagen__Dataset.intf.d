lib/datagen/dataset.mli: Rdf
