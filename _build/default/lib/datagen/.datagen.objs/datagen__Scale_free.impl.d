lib/datagen/scale_free.ml: Array Float List Printf Prng Rdf
