lib/datagen/lubm.ml: Array Filename Hashtbl List Printf Prng Rdf
