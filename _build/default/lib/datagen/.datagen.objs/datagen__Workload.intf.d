lib/datagen/workload.mli: Rdf Sparql
