lib/datagen/prng.mli:
