lib/datagen/scale_free.mli: Rdf
