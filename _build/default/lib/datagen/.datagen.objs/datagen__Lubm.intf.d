lib/datagen/lubm.mli: Rdf
