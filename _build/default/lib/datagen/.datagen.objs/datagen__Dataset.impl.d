lib/datagen/dataset.ml: Lubm Printf Rdf Scale_free
