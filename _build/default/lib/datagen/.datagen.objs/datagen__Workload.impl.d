lib/datagen/workload.ml: Array Hashtbl List Option Printf Prng Rdf Sparql String
