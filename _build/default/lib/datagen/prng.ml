type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed =
  { state = Int64.add (Int64.of_int seed) 0x1234_5678_9ABC_DEFL }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits: a 63-bit value can overflow OCaml's native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array"
  else arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  let k = min k (Array.length arr) in
  let copy = Array.copy arr in
  shuffle t copy;
  Array.to_list (Array.sub copy 0 k)

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  (* Inverse transform over the truncated harmonic weights. Weight
     tables are tiny (n = #predicates), so a linear walk is fine. *)
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let target = float t *. total in
  let rec walk i acc =
    if i >= n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if acc >= target then i else walk (i + 1) acc
  in
  walk 0 0.0
