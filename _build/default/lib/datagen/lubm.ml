let namespace = "http://swat.lehigh.edu/onto/univ-bench.owl#"
let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

let ub local = namespace ^ local

let object_properties =
  [
    rdf_type;
    ub "subOrganizationOf";
    ub "worksFor";
    ub "headOf";
    ub "memberOf";
    ub "teacherOf";
    ub "takesCourse";
    ub "teachingAssistantOf";
    ub "advisor";
    ub "publicationAuthor";
    ub "undergraduateDegreeFrom";
    ub "mastersDegreeFrom";
    ub "doctoralDegreeFrom";
  ]

let datatype_properties =
  [ ub "name"; ub "emailAddress"; ub "telephone"; ub "researchInterest" ]

type emitter = { mutable triples : Rdf.Triple.t list; mutable count : int }

let emit e s p o =
  e.triples <- Rdf.Triple.spo s p o :: e.triples;
  e.count <- e.count + 1

let obj iri = Rdf.Term.iri iri
let lit s = Rdf.Term.literal s

(* Entity IRIs mirror the official generator's layout. *)
let univ_iri u = Printf.sprintf "http://www.university%d.edu" u
let dept_iri u d = Printf.sprintf "http://www.department%d.university%d.edu" d u

let entity u d kind i =
  Printf.sprintf "%s/%s%d" (dept_iri u d) kind i

let generate ?(seed = 42) ~universities () =
  let rng = Prng.create seed in
  let e = { triples = []; count = 0 } in
  let classes =
    [| ub "University"; ub "Department"; ub "FullProfessor";
       ub "AssociateProfessor"; ub "AssistantProfessor"; ub "Lecturer";
       ub "UndergraduateStudent"; ub "GraduateStudent"; ub "Course";
       ub "GraduateCourse"; ub "Publication" |]
  in
  let class_university = classes.(0)
  and class_department = classes.(1)
  and class_lecturer = classes.(5)
  and class_undergrad = classes.(6)
  and class_grad = classes.(7)
  and class_course = classes.(8)
  and class_grad_course = classes.(9)
  and class_publication = classes.(10) in
  let interests =
    [| "databases"; "machine learning"; "graphics"; "systems"; "theory";
       "networks"; "security"; "hci"; "compilers"; "robotics" |]
  in
  let any_university () = univ_iri (Prng.int rng universities) in
  let describe iri name_hint =
    emit e iri (ub "name") (lit name_hint);
    if Prng.bool rng 0.8 then
      emit e iri (ub "emailAddress") (lit (name_hint ^ "@example.edu"));
    if Prng.bool rng 0.5 then
      emit e iri (ub "telephone")
        (lit (Printf.sprintf "+1-555-%04d" (Prng.int rng 10000)))
  in
  for u = 0 to universities - 1 do
    let univ = univ_iri u in
    emit e univ rdf_type (obj class_university);
    emit e univ (ub "name") (lit (Printf.sprintf "University%d" u));
    let departments = 10 + Prng.int rng 5 in
    for d = 0 to departments - 1 do
      let dept = dept_iri u d in
      emit e dept rdf_type (obj class_department);
      emit e dept (ub "subOrganizationOf") (obj univ);
      emit e dept (ub "name") (lit (Printf.sprintf "Department%d-%d" u d));
      (* Faculty: professors of three ranks plus lecturers. *)
      let professors = ref [] in
      let faculty_ranks =
        [ (2, 3 + Prng.int rng 3); (3, 4 + Prng.int rng 3); (4, 3 + Prng.int rng 3) ]
      in
      List.iter
        (fun (class_idx, count) ->
          for i = 0 to count - 1 do
            let prof =
              entity u d
                (match class_idx with
                | 2 -> "FullProfessor"
                | 3 -> "AssociateProfessor"
                | _ -> "AssistantProfessor")
                i
            in
            professors := prof :: !professors;
            emit e prof rdf_type (obj classes.(class_idx));
            emit e prof (ub "worksFor") (obj dept);
            emit e prof (ub "undergraduateDegreeFrom") (obj (any_university ()));
            emit e prof (ub "mastersDegreeFrom") (obj (any_university ()));
            emit e prof (ub "doctoralDegreeFrom") (obj (any_university ()));
            emit e prof (ub "researchInterest") (lit (Prng.choice rng interests));
            describe prof (Filename.basename prof)
          done)
        faculty_ranks;
      let professors = Array.of_list !professors in
      (* A department head. *)
      emit e (Prng.choice rng professors) (ub "headOf") (obj dept);
      let lecturers =
        Array.init (2 + Prng.int rng 3) (fun i -> entity u d "Lecturer" i)
      in
      Array.iter
        (fun l ->
          emit e l rdf_type (obj class_lecturer);
          emit e l (ub "worksFor") (obj dept);
          describe l (Filename.basename l))
        lecturers;
      let teachers = Array.append professors lecturers in
      (* Courses, remembering who teaches what so teaching assistants
         can be assigned to their advisor's courses. *)
      let course_teacher = Hashtbl.create 32 in
      let courses =
        Array.init (12 + Prng.int rng 6) (fun i -> entity u d "Course" i)
      in
      Array.iter
        (fun c ->
          emit e c rdf_type (obj class_course);
          emit e c (ub "name") (lit (Filename.basename c));
          let teacher = Prng.choice rng teachers in
          Hashtbl.replace course_teacher c teacher;
          emit e teacher (ub "teacherOf") (obj c))
        courses;
      let grad_courses =
        Array.init (6 + Prng.int rng 4) (fun i -> entity u d "GraduateCourse" i)
      in
      Array.iter
        (fun c ->
          emit e c rdf_type (obj class_grad_course);
          emit e c (ub "name") (lit (Filename.basename c));
          emit e (Prng.choice rng professors) (ub "teacherOf") (obj c))
        grad_courses;
      (* Students. *)
      let undergrads =
        Array.init (40 + Prng.int rng 20) (fun i ->
            entity u d "UndergraduateStudent" i)
      in
      Array.iter
        (fun s ->
          emit e s rdf_type (obj class_undergrad);
          emit e s (ub "memberOf") (obj dept);
          List.iter
            (fun c -> emit e s (ub "takesCourse") (obj c))
            (Prng.sample rng courses (2 + Prng.int rng 3));
          describe s (Filename.basename s))
        undergrads;
      let grads =
        Array.init (12 + Prng.int rng 8) (fun i -> entity u d "GraduateStudent" i)
      in
      Array.iter
        (fun s ->
          emit e s rdf_type (obj class_grad);
          emit e s (ub "memberOf") (obj dept);
          emit e s (ub "undergraduateDegreeFrom") (obj (any_university ()));
          let advisor = Prng.choice rng professors in
          emit e s (ub "advisor") (obj advisor);
          List.iter
            (fun c -> emit e s (ub "takesCourse") (obj c))
            (Prng.sample rng grad_courses (1 + Prng.int rng 3));
          if Prng.bool rng 0.3 then begin
            (* Prefer a course the advisor teaches, as LUBM does. *)
            let advised =
              Array.of_list
                (Array.to_list courses
                |> List.filter (fun c -> Hashtbl.find_opt course_teacher c = Some advisor))
            in
            let course =
              if Array.length advised > 0 && Prng.bool rng 0.7 then
                Prng.choice rng advised
              else Prng.choice rng courses
            in
            emit e s (ub "teachingAssistantOf") (obj course)
          end;
          describe s (Filename.basename s))
        grads;
      (* Publications: authored by faculty and graduate students. *)
      let publications =
        Array.init (Array.length professors * (2 + Prng.int rng 3)) (fun i ->
            entity u d "Publication" i)
      in
      Array.iteri
        (fun i p ->
          emit e p rdf_type (obj class_publication);
          emit e p (ub "name") (lit (Filename.basename p));
          emit e p (ub "publicationAuthor")
            (obj professors.(i mod Array.length professors));
          if Array.length grads > 0 && Prng.bool rng 0.4 then
            emit e p (ub "publicationAuthor") (obj (Prng.choice rng grads)))
        publications
    done
  done;
  List.rev e.triples
