(** Prefix tables for compact IRI notation.

    A namespace table maps prefixes such as ["dbo"] to base IRIs such as
    ["http://dbpedia.org/ontology/"], supporting both expansion
    ([dbo:birthPlace] → full IRI) and compaction (full IRI → shortest
    prefixed name). *)

type t

val empty : t

val common : t
(** Table preloaded with [rdf], [rdfs], [xsd], [owl], [foaf] and the
    DBpedia prefixes [dbr] (resource) and [dbo] (ontology). *)

val add : t -> prefix:string -> iri:string -> t
(** [add t ~prefix ~iri] binds [prefix] to the base IRI [iri], replacing
    any previous binding of [prefix]. *)

val expand : t -> string -> string option
(** [expand t "p:local"] is [Some full_iri] when [p] is bound; [None] when
    the string has no [:] or the prefix is unbound. *)

val compact : t -> string -> string option
(** [compact t iri] is [Some "p:local"] for the longest matching base IRI
    bound in [t], [None] when no base is a prefix of [iri]. *)

val bindings : t -> (string * string) list
(** All [(prefix, base_iri)] bindings, sorted by prefix. *)
