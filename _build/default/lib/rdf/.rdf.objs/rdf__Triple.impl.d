lib/rdf/triple.ml: Format Hashtbl Term
