lib/rdf/turtle.mli: Format Namespace Triple
