lib/rdf/term.ml: Buffer Float Format Hashtbl Int Option String
