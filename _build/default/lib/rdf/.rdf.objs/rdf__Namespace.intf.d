lib/rdf/namespace.mli:
