lib/rdf/ntriples.ml: Buffer Char Format List Printf String Term Triple
