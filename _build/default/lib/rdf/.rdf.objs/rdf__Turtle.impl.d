lib/rdf/turtle.ml: Buffer Format List Namespace Printf String Term Triple
