lib/rdf/binary.mli: Buffer Triple
