lib/rdf/ntriples.mli: Format Triple
