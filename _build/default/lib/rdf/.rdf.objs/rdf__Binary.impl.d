lib/rdf/binary.ml: Array Buffer Char Hashtbl List Printf String Term Triple
