lib/rdf/triple.mli: Format Term
