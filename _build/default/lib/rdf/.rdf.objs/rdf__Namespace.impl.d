lib/rdf/namespace.ml: List Map String
