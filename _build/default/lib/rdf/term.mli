(** RDF terms: IRIs, literals and blank nodes.

    Terms are the components of RDF triples. Subjects are IRIs or blank
    nodes, predicates are IRIs, objects are IRIs, blank nodes or literals.
    Literals optionally carry a datatype IRI or a language tag, mirroring
    the RDF 1.1 abstract syntax. *)

type literal = {
  value : string;  (** lexical form, e.g. ["90000"] *)
  datatype : string option;  (** datatype IRI, absent for plain literals *)
  lang : string option;  (** language tag, e.g. ["en"] *)
}

type t =
  | Iri of string  (** absolute IRI, without the enclosing [< >] *)
  | Literal of literal
  | Bnode of string  (** blank node label, without the [_:] prefix *)

val iri : string -> t
(** [iri s] is the IRI term [s]. *)

val literal : ?datatype:string -> ?lang:string -> string -> t
(** [literal v] is a literal with lexical form [v]. At most one of
    [datatype] and [lang] may be given; giving both raises
    [Invalid_argument]. *)

val bnode : string -> t
(** [bnode label] is the blank node [_:label]. *)

val is_iri : t -> bool
val is_literal : t -> bool
val is_bnode : t -> bool

val compare : t -> t -> int
(** Total order over terms: IRIs < literals < blank nodes, then
    lexicographic on contents. *)

val order_compare : t -> t -> int
(** SPARQL [ORDER BY] semantics: blank nodes < IRIs < literals;
    literals with numeric lexical forms compare numerically, all other
    literals by lexical form (then datatype/language). *)

val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** N-Triples concrete syntax: [<iri>], ["literal"^^<dt>], [_:b]. *)

val to_string : t -> string
(** [to_string t] is [pp] rendered to a string. *)
