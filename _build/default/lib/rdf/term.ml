type literal = {
  value : string;
  datatype : string option;
  lang : string option;
}

type t = Iri of string | Literal of literal | Bnode of string

let iri s = Iri s

let literal ?datatype ?lang value =
  match (datatype, lang) with
  | Some _, Some _ ->
      invalid_arg "Term.literal: a literal cannot have both datatype and lang"
  | _ -> Literal { value; datatype; lang }

let bnode label = Bnode label
let is_iri = function Iri _ -> true | Literal _ | Bnode _ -> false
let is_literal = function Literal _ -> true | Iri _ | Bnode _ -> false
let is_bnode = function Bnode _ -> true | Iri _ | Literal _ -> false

let compare_literal l1 l2 =
  let c = String.compare l1.value l2.value in
  if c <> 0 then c
  else
    let c = Option.compare String.compare l1.datatype l2.datatype in
    if c <> 0 then c else Option.compare String.compare l1.lang l2.lang

(* Rank keeps the order promised by the interface: IRI < literal < bnode. *)
let rank = function Iri _ -> 0 | Literal _ -> 1 | Bnode _ -> 2

let compare t1 t2 =
  match (t1, t2) with
  | Iri a, Iri b -> String.compare a b
  | Literal a, Literal b -> compare_literal a b
  | Bnode a, Bnode b -> String.compare a b
  | _ -> Int.compare (rank t1) (rank t2)

let equal t1 t2 = compare t1 t2 = 0

(* SPARQL ORDER BY: bnode < IRI < literal; numeric literals numerically. *)
let order_rank = function Bnode _ -> 0 | Iri _ -> 1 | Literal _ -> 2

let order_compare t1 t2 =
  match (t1, t2) with
  | Bnode a, Bnode b -> String.compare a b
  | Iri a, Iri b -> String.compare a b
  | Literal l1, Literal l2 -> (
      match (float_of_string_opt l1.value, float_of_string_opt l2.value) with
      | Some f1, Some f2 ->
          let c = Float.compare f1 f2 in
          if c <> 0 then c else compare_literal l1 l2
      | _ -> compare_literal l1 l2)
  | _ -> Int.compare (order_rank t1) (order_rank t2)

let hash = function
  | Iri s -> Hashtbl.hash (0, s)
  | Literal { value; datatype; lang } -> Hashtbl.hash (1, value, datatype, lang)
  | Bnode s -> Hashtbl.hash (2, s)

(* Escape per N-Triples: backslash, quote, and control characters. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp ppf = function
  | Iri s -> Format.fprintf ppf "<%s>" s
  | Bnode b -> Format.fprintf ppf "_:%s" b
  | Literal { value; datatype; lang } -> (
      Format.fprintf ppf "\"%s\"" (escape_string value);
      match (datatype, lang) with
      | Some dt, _ -> Format.fprintf ppf "^^<%s>" dt
      | None, Some l -> Format.fprintf ppf "@%s" l
      | None, None -> ())

let to_string t = Format.asprintf "%a" pp t
