(** RDF triples [<subject, predicate, object>].

    Invariants (checked by {!make}): the subject is an IRI or a blank
    node, the predicate is an IRI, the object is any term. *)

type t = { subject : Term.t; predicate : Term.t; obj : Term.t }

exception Invalid of string
(** Raised by {!make} when a component violates the RDF triple invariants. *)

val make : Term.t -> Term.t -> Term.t -> t
(** [make s p o] is the triple [<s, p, o>].
    @raise Invalid if [s] is a literal or [p] is not an IRI. *)

val spo : string -> string -> Term.t -> t
(** [spo s p o] is [make (Iri s) (Iri p) o] — convenient for test data. *)

val compare : t -> t -> int
(** Lexicographic (subject, predicate, object) order. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
