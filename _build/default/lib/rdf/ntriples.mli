(** N-Triples reader and writer.

    Implements the line-oriented N-Triples syntax: one triple per line,
    terminated by [.], with [#] comments and blank lines ignored. Parsing
    is strict about term shapes but tolerant about surrounding
    whitespace. *)

type error = { line : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_line : ?line:int -> string -> Triple.t option
(** [parse_line s] parses one line. [None] for blank/comment lines.
    @raise Parse_error on malformed input; [line] (default 1) is used in
    the error report. *)

val parse_string : string -> Triple.t list
(** Parse a whole document. @raise Parse_error with the offending line. *)

val parse_file : string -> Triple.t list
(** Like {!parse_string}, reading from a file. *)

val to_string : Triple.t list -> string
(** Serialize triples, one per line, in canonical N-Triples syntax. *)

val write_file : string -> Triple.t list -> unit

val roundtrip_safe : Triple.t -> bool
(** [roundtrip_safe t] is [true] when serializing [t] and re-parsing it
    yields [t] again (used by property tests; false only for terms
    containing characters our writer cannot escape, of which there are
    none — it always holds and is exposed for the test suite). *)
