(** Turtle reader (a practical subset).

    Supported: [@prefix] / SPARQL-style [PREFIX] declarations, [@base],
    prefixed names, [a] for [rdf:type], predicate lists with [;], object
    lists with [,], string literals with escapes / language tags /
    datatypes, integer, decimal and boolean shorthands, labelled blank
    nodes ([_:b]), anonymous blank nodes ([ ... ]), and comments.

    Not supported (raises {!Parse_error}): collections [( ... )],
    multi-line [""" """] strings, and [@base]-relative resolution beyond
    simple concatenation. *)

type error = { line : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

val parse_string : ?namespaces:Namespace.t -> string -> Triple.t list
(** Parse a Turtle document. Prefixes declared in the document extend
    [namespaces] (default {!Namespace.empty}).
    @raise Parse_error on malformed or unsupported input. *)

val parse_file : ?namespaces:Namespace.t -> string -> Triple.t list
