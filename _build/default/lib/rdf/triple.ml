type t = { subject : Term.t; predicate : Term.t; obj : Term.t }

exception Invalid of string

let make subject predicate obj =
  (match subject with
  | Term.Literal _ -> raise (Invalid "subject cannot be a literal")
  | Term.Iri _ | Term.Bnode _ -> ());
  (match predicate with
  | Term.Iri _ -> ()
  | Term.Literal _ | Term.Bnode _ -> raise (Invalid "predicate must be an IRI"));
  { subject; predicate; obj }

let spo s p o = make (Term.iri s) (Term.iri p) o

let compare t1 t2 =
  let c = Term.compare t1.subject t2.subject in
  if c <> 0 then c
  else
    let c = Term.compare t1.predicate t2.predicate in
    if c <> 0 then c else Term.compare t1.obj t2.obj

let equal t1 t2 = compare t1 t2 = 0
let hash t = Hashtbl.hash (Term.hash t.subject, Term.hash t.predicate, Term.hash t.obj)

let pp ppf t =
  Format.fprintf ppf "%a %a %a ." Term.pp t.subject Term.pp t.predicate
    Term.pp t.obj

let to_string t = Format.asprintf "%a" pp t
