type error = { line : int; message : string }

exception Parse_error of error

let pp_error ppf { line; message } =
  Format.fprintf ppf "N-Triples parse error at line %d: %s" line message

let fail line message = raise (Parse_error { line; message })

(* A tiny cursor over one line of input. *)
type cursor = { src : string; mutable pos : int; line : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec loop () =
    match peek c with
    | Some (' ' | '\t') ->
        advance c;
        loop ()
    | _ -> ()
  in
  loop ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c.line (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c.line (Printf.sprintf "expected %c, found end of line" ch)

(* Read until [stop], without escape processing (IRIs, bnode labels). *)
let read_until c stop =
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some x when x <> stop ->
        advance c;
        loop ()
    | Some _ -> ()
    | None -> fail c.line (Printf.sprintf "unterminated token, expected %c" stop)
  in
  loop ();
  String.sub c.src start (c.pos - start)

let read_iri c =
  expect c '<';
  let iri = read_until c '>' in
  expect c '>';
  iri

(* Quoted string with the N-Triples escapes. *)
let read_quoted c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c.line "unterminated string literal"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.line "dangling escape at end of line"
        | Some esc ->
            advance c;
            (match esc with
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | 'u' | 'U' ->
                let width = if esc = 'u' then 4 else 8 in
                if c.pos + width > String.length c.src then
                  fail c.line "truncated unicode escape"
                else begin
                  let hex = String.sub c.src c.pos width in
                  c.pos <- c.pos + width;
                  match int_of_string_opt ("0x" ^ hex) with
                  | None -> fail c.line ("bad unicode escape \\u" ^ hex)
                  | Some code ->
                      (* Encode the scalar value as UTF-8. *)
                      if code < 0x80 then Buffer.add_char buf (Char.chr code)
                      else if code < 0x800 then begin
                        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                      end
                      else if code < 0x10000 then begin
                        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                      end
                      else begin
                        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
                        Buffer.add_char buf
                          (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                      end
                end
            | x -> fail c.line (Printf.sprintf "unknown escape \\%c" x));
            loop ())
    | Some x ->
        advance c;
        Buffer.add_char buf x;
        loop ()
  in
  loop ();
  Buffer.contents buf

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let read_bnode c =
  expect c '_';
  expect c ':';
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some x when is_name_char x ->
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  if c.pos = start then fail c.line "empty blank node label";
  String.sub c.src start (c.pos - start)

let read_lang c =
  expect c '@';
  let start = c.pos in
  let rec loop () =
    match peek c with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-') ->
        advance c;
        loop ()
    | _ -> ()
  in
  loop ();
  if c.pos = start then fail c.line "empty language tag";
  String.sub c.src start (c.pos - start)

let read_term c =
  match peek c with
  | Some '<' -> Term.iri (read_iri c)
  | Some '_' -> Term.bnode (read_bnode c)
  | Some '"' -> (
      let value = read_quoted c in
      match peek c with
      | Some '^' ->
          advance c;
          expect c '^';
          let dt = read_iri c in
          Term.literal ~datatype:dt value
      | Some '@' ->
          let lang = read_lang c in
          Term.literal ~lang value
      | _ -> Term.literal value)
  | Some x -> fail c.line (Printf.sprintf "unexpected character %c" x)
  | None -> fail c.line "unexpected end of line"

let parse_line ?(line = 1) src =
  let c = { src; pos = 0; line } in
  skip_ws c;
  match peek c with
  | None | Some '#' -> None
  | Some _ ->
      let subject = read_term c in
      skip_ws c;
      let predicate = read_term c in
      skip_ws c;
      let obj = read_term c in
      skip_ws c;
      expect c '.';
      skip_ws c;
      (match peek c with
      | None | Some '#' -> ()
      | Some x -> fail line (Printf.sprintf "trailing garbage %c after '.'" x));
      (try Some (Triple.make subject predicate obj)
       with Triple.Invalid msg -> fail line msg)

let parse_lines lines =
  List.rev
  @@ snd
  @@ List.fold_left
       (fun (n, acc) l ->
         match parse_line ~line:n l with
         | None -> (n + 1, acc)
         | Some t -> (n + 1, t :: acc))
       (1, []) lines

let parse_string doc = parse_lines (String.split_on_char '\n' doc)

let parse_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     let rec loop () =
       lines := input_line ic :: !lines;
       loop ()
     in
     loop ()
   with End_of_file -> close_in ic);
  parse_lines (List.rev !lines)

let to_string triples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (Triple.to_string t);
      Buffer.add_char buf '\n')
    triples;
  Buffer.contents buf

let write_file path triples =
  let oc = open_out path in
  output_string oc (to_string triples);
  close_out oc

let roundtrip_safe t =
  match parse_line (Triple.to_string t) with
  | Some t' -> Triple.equal t t'
  | None -> false
  | exception Parse_error _ -> false
