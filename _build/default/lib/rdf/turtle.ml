type error = { line : int; message : string }

exception Parse_error of error

let pp_error ppf { line; message } =
  Format.fprintf ppf "Turtle parse error at line %d: %s" line message

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable namespaces : Namespace.t;
  mutable base : string;
  mutable bnode_counter : int;
  mutable triples : Triple.t list;  (* reversed *)
}

let fail st fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line = st.line; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_ws st
  | Some '#' ->
      while (match peek st with Some c -> c <> '\n' | None -> false) do
        advance st
      done;
      skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail st "expected '%c', found '%c'" c x
  | None -> fail st "expected '%c', found end of input" c

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let read_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_iri_ref st =
  expect st '<';
  let start = st.pos in
  while (match peek st with Some c -> c <> '>' | None -> false) do
    advance st
  done;
  if peek st = None then fail st "unterminated IRI";
  let body = String.sub st.src start (st.pos - start) in
  advance st;
  (* Base resolution by concatenation: good enough for relative names. *)
  if String.length body > 0 && String.contains body ':' then body
  else st.base ^ body

let read_quoted st =
  expect st '"';
  (* Reject the long-string form explicitly. *)
  if peek st = Some '"' && peek_at st 1 = Some '"' then
    fail st "triple-quoted strings are not supported";
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "dangling escape"
        | Some c ->
            advance st;
            (match c with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | c -> fail st "unknown escape \\%c" c);
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let expand st prefix local =
  match Namespace.expand st.namespaces (prefix ^ ":" ^ local) with
  | Some iri -> iri
  | None -> fail st "unbound prefix %S" prefix

let fresh_bnode st =
  st.bnode_counter <- st.bnode_counter + 1;
  Term.bnode (Printf.sprintf "genid%d" st.bnode_counter)

let emit st s p o =
  match Triple.make s p o with
  | triple -> st.triples <- triple :: st.triples
  | exception Triple.Invalid msg -> fail st "%s" msg

let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
let xsd = "http://www.w3.org/2001/XMLSchema#"

let is_digit = function '0' .. '9' -> true | _ -> false

(* Forward declaration for anonymous blank nodes. *)
let rec read_term st ~as_predicate : Term.t =
  skip_ws st;
  match peek st with
  | Some '<' -> Term.iri (read_iri_ref st)
  | Some '_' ->
      advance st;
      expect st ':';
      let label = read_name st in
      if label = "" then fail st "empty blank node label";
      Term.bnode label
  | Some '[' when not as_predicate ->
      advance st;
      let node = fresh_bnode st in
      skip_ws st;
      if peek st = Some ']' then advance st
      else begin
        read_predicate_object_list st node;
        expect st ']'
      end;
      node
  | Some '"' -> read_literal st
  | Some c when is_digit c || c = '-' || c = '+' -> read_number st
  | Some c when is_name_char c || c = ':' ->
      let name = if c = ':' then "" else read_name st in
      if peek st = Some ':' then begin
        advance st;
        let local =
          match peek st with
          | Some c when is_name_char c -> read_name st
          | _ -> ""
        in
        Term.iri (expand st name local)
      end
      else if name = "a" && as_predicate then Term.iri rdf_type
      else if name = "true" || name = "false" then
        Term.literal ~datatype:(xsd ^ "boolean") name
      else fail st "unexpected bare word %S" name
  | Some c -> fail st "unexpected character '%c'" c
  | None -> fail st "unexpected end of input"

and read_literal st =
  let value = read_quoted st in
  match peek st with
  | Some '@' ->
      advance st;
      let lang = read_name st in
      if lang = "" then fail st "empty language tag";
      Term.literal ~lang value
  | Some '^' ->
      advance st;
      expect st '^';
      skip_ws st;
      let dt =
        match peek st with
        | Some '<' -> read_iri_ref st
        | Some c when is_name_char c || c = ':' ->
            let name = if c = ':' then "" else read_name st in
            if peek st = Some ':' then begin
              advance st;
              let local = read_name st in
              expand st name local
            end
            else fail st "expected datatype IRI"
        | _ -> fail st "expected datatype IRI"
      in
      Term.literal ~datatype:dt value
  | _ -> Term.literal value

and read_number st =
  let start = st.pos in
  if peek st = Some '-' || peek st = Some '+' then advance st;
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let decimal =
    match (peek st, peek_at st 1) with
    | Some '.', Some d when is_digit d ->
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done;
        true
    | _ -> false
  in
  let text = String.sub st.src start (st.pos - start) in
  Term.literal ~datatype:(xsd ^ if decimal then "decimal" else "integer") text

(* predicate objects ( ; predicate objects )* for a given subject *)
and read_predicate_object_list st subject =
  let rec one () =
    skip_ws st;
    let predicate = read_term st ~as_predicate:true in
    (match predicate with
    | Term.Iri _ -> ()
    | Term.Literal _ | Term.Bnode _ -> fail st "predicate must be an IRI");
    let rec objects () =
      let obj = read_term st ~as_predicate:false in
      emit st subject predicate obj;
      skip_ws st;
      if peek st = Some ',' then begin
        advance st;
        objects ()
      end
    in
    objects ();
    skip_ws st;
    if peek st = Some ';' then begin
      advance st;
      skip_ws st;
      (* tolerate dangling ';' before '.' or ']' *)
      match peek st with
      | Some ('.' | ']') -> ()
      | _ -> one ()
    end
  in
  one ()

let starts_with_keyword st kw =
  let n = String.length kw in
  st.pos + n <= String.length st.src
  && String.uppercase_ascii (String.sub st.src st.pos n) = kw
  && match peek_at st n with
     | Some (' ' | '\t' | '\r' | '\n' | '<') -> true
     | _ -> false

let read_prefix_declaration st ~sparql_style =
  (* after the keyword *)
  skip_ws st;
  let prefix =
    match peek st with
    | Some ':' -> ""
    | Some c when is_name_char c -> read_name st
    | _ -> fail st "expected prefix name"
  in
  expect st ':';
  skip_ws st;
  let iri = read_iri_ref st in
  st.namespaces <- Namespace.add st.namespaces ~prefix ~iri;
  if not sparql_style then expect st '.'

let read_base_declaration st ~sparql_style =
  skip_ws st;
  let iri = read_iri_ref st in
  st.base <- iri;
  if not sparql_style then expect st '.'

let parse_document st =
  let rec loop () =
    skip_ws st;
    match peek st with
    | None -> ()
    | Some '@' ->
        advance st;
        let kw = read_name st in
        (match String.lowercase_ascii kw with
        | "prefix" -> read_prefix_declaration st ~sparql_style:false
        | "base" -> read_base_declaration st ~sparql_style:false
        | other -> fail st "unknown directive @%s" other);
        loop ()
    | Some _ when starts_with_keyword st "PREFIX" ->
        st.pos <- st.pos + 6;
        read_prefix_declaration st ~sparql_style:true;
        loop ()
    | Some _ when starts_with_keyword st "BASE" ->
        st.pos <- st.pos + 4;
        read_base_declaration st ~sparql_style:true;
        loop ()
    | Some '(' -> fail st "collections are not supported"
    | Some _ ->
        let subject = read_term st ~as_predicate:false in
        (match subject with
        | Term.Literal _ -> fail st "literal subject"
        | Term.Iri _ | Term.Bnode _ -> ());
        skip_ws st;
        (* An anonymous subject "[ p o ] ." may end immediately. *)
        (match peek st with
        | Some '.' -> ()
        | _ -> read_predicate_object_list st subject);
        expect st '.';
        loop ()
  in
  loop ()

let parse_string ?(namespaces = Namespace.empty) src =
  let st =
    {
      src;
      pos = 0;
      line = 1;
      namespaces;
      base = "";
      bnode_counter = 0;
      triples = [];
    }
  in
  parse_document st;
  List.rev st.triples

let parse_file ?namespaces path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse_string ?namespaces src
