let magic = "AMBERDB1"

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

module Varint = struct
  (* LEB128, unsigned. OCaml ints are non-negative here (lengths and
     dictionary indexes). *)
  let write buf n =
    if n < 0 then invalid_arg "Binary.Varint.write: negative";
    let rec loop n =
      if n < 0x80 then Buffer.add_char buf (Char.chr n)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
        loop (n lsr 7)
      end
    in
    loop n

  let read src pos =
    let rec loop shift acc =
      if !pos >= String.length src then corrupt "truncated varint";
      if shift > 56 then corrupt "varint overflow";
      let byte = Char.code src.[!pos] in
      incr pos;
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 = 0 then acc else loop (shift + 7) acc
    in
    loop 0 0
end

let write_string buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let read_string src pos =
  let len = Varint.read src pos in
  if !pos + len > String.length src then corrupt "truncated string";
  let s = String.sub src !pos len in
  pos := !pos + len;
  s

(* Term tags. *)
let tag_iri = 0
let tag_plain = 1
let tag_typed = 2
let tag_lang = 3
let tag_bnode = 4

let write_term buf = function
  | Term.Iri iri ->
      Varint.write buf tag_iri;
      write_string buf iri
  | Term.Literal { value; datatype = None; lang = None } ->
      Varint.write buf tag_plain;
      write_string buf value
  | Term.Literal { value; datatype = Some dt; lang = None } ->
      Varint.write buf tag_typed;
      write_string buf value;
      write_string buf dt
  | Term.Literal { value; datatype = None; lang = Some l } ->
      Varint.write buf tag_lang;
      write_string buf value;
      write_string buf l
  | Term.Literal { datatype = Some _; lang = Some _; _ } ->
      assert false (* Term.literal forbids this combination *)
  | Term.Bnode b ->
      Varint.write buf tag_bnode;
      write_string buf b

let read_term src pos =
  let tag = Varint.read src pos in
  if tag = tag_iri then Term.iri (read_string src pos)
  else if tag = tag_plain then Term.literal (read_string src pos)
  else if tag = tag_typed then begin
    let value = read_string src pos in
    Term.literal ~datatype:(read_string src pos) value
  end
  else if tag = tag_lang then begin
    let value = read_string src pos in
    Term.literal ~lang:(read_string src pos) value
  end
  else if tag = tag_bnode then Term.bnode (read_string src pos)
  else corrupt "unknown term tag %d" tag

let write buf triples =
  Buffer.add_string buf magic;
  (* Dictionary: distinct terms in first-occurrence order. *)
  let ids = Hashtbl.create 1024 in
  let dictionary = ref [] in
  let dict_size = ref 0 in
  let id_of term =
    let key = Term.to_string term in
    match Hashtbl.find_opt ids key with
    | Some id -> id
    | None ->
        let id = !dict_size in
        Hashtbl.add ids key id;
        dictionary := term :: !dictionary;
        incr dict_size;
        id
  in
  let encoded =
    List.map
      (fun { Triple.subject; predicate; obj } ->
        (id_of subject, id_of predicate, id_of obj))
      triples
  in
  Varint.write buf !dict_size;
  List.iter (write_term buf) (List.rev !dictionary);
  Varint.write buf (List.length encoded);
  List.iter
    (fun (s, p, o) ->
      Varint.write buf s;
      Varint.write buf p;
      Varint.write buf o)
    encoded

let read src ~pos =
  let n = String.length magic in
  if String.length src < pos + n || String.sub src pos n <> magic then
    corrupt "bad magic (not an AMbER binary RDF file)";
  let cursor = ref (pos + n) in
  let dict_size = Varint.read src cursor in
  let dictionary = Array.init dict_size (fun _ -> read_term src cursor) in
  let term id =
    if id < 0 || id >= dict_size then corrupt "term index %d out of range" id
    else dictionary.(id)
  in
  let count = Varint.read src cursor in
  List.init count (fun _ ->
      let s = Varint.read src cursor in
      let p = Varint.read src cursor in
      let o = Varint.read src cursor in
      match Triple.make (term s) (term p) (term o) with
      | t -> t
      | exception Triple.Invalid msg -> corrupt "invalid triple: %s" msg)

let write_file path triples =
  let buf = Buffer.create (1 lsl 16) in
  write buf triples;
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  read src ~pos:0
