module String_map = Map.Make (String)

type t = string String_map.t

let empty = String_map.empty
let add t ~prefix ~iri = String_map.add prefix iri t

let common =
  List.fold_left
    (fun t (prefix, iri) -> add t ~prefix ~iri)
    empty
    [
      ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
      ("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
      ("xsd", "http://www.w3.org/2001/XMLSchema#");
      ("owl", "http://www.w3.org/2002/07/owl#");
      ("foaf", "http://xmlns.com/foaf/0.1/");
      ("dbr", "http://dbpedia.org/resource/");
      ("dbo", "http://dbpedia.org/ontology/");
    ]

let expand t s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
      let prefix = String.sub s 0 i in
      let local = String.sub s (i + 1) (String.length s - i - 1) in
      match String_map.find_opt prefix t with
      | None -> None
      | Some base -> Some (base ^ local))

let compact t iri =
  let best =
    String_map.fold
      (fun prefix base acc ->
        let blen = String.length base in
        if blen <= String.length iri && String.sub iri 0 blen = base then
          match acc with
          | Some (_, best_len) when best_len >= blen -> acc
          | _ -> Some (prefix, blen)
        else acc)
      t None
  in
  match best with
  | None -> None
  | Some (prefix, blen) ->
      Some (prefix ^ ":" ^ String.sub iri blen (String.length iri - blen))

let bindings t = String_map.bindings t
