(** Compact binary RDF serialization — the on-disk database format of
    the offline stage.

    Layout: an 8-byte magic ["AMBERDB1"], a term dictionary (every
    distinct term once, tagged by kind), then the triples as dictionary
    indexes. Unsigned integers use LEB128 varints, so files are
    typically 3–6× smaller than the equivalent N-Triples and parse an
    order of magnitude faster. *)

val magic : string

exception Corrupt of string
(** Raised by the readers on malformed input (bad magic, truncated
    varint, out-of-range index, unknown tag). *)

val write : Buffer.t -> Triple.t list -> unit

val read : string -> pos:int -> Triple.t list
(** Read from a string starting at [pos] (the whole buffer must contain
    the full document). *)

val write_file : string -> Triple.t list -> unit
val read_file : string -> Triple.t list

(**/**)

module Varint : sig
  val write : Buffer.t -> int -> unit
  val read : string -> int ref -> int
  (** @raise Corrupt on truncation or overflow. *)
end
