let name = "gstore-like"

let signature_words = 4
let bits_per_word = 62
let signature_bits = signature_words * bits_per_word

(* --- bit signatures ---------------------------------------------- *)

let empty_sig () = Array.make signature_words 0

let set_bit s b =
  let b = b mod signature_bits in
  s.(b / bits_per_word) <- s.(b / bits_per_word) lor (1 lsl (b mod bits_per_word))

let subset_sig ~small ~big =
  let rec loop i =
    i >= signature_words || (small.(i) land big.(i) = small.(i) && loop (i + 1))
  in
  loop 0

let or_sig acc s =
  for i = 0 to signature_words - 1 do
    acc.(i) <- acc.(i) lor s.(i)
  done

let bit_of seed a b = Hashtbl.hash (seed, a, b)

(* --- store -------------------------------------------------------- *)

type t = {
  dict : Term_dict.t;
  n : int;
  out_adj : (int * int) array array;  (* node -> sorted (pred, neighbour) *)
  in_adj : (int * int) array array;
  sigs : int array array;  (* per node *)
  blocks : (int array * int * int) list;
      (* VS-tree leaf level: (OR-ed signature, first node, last node) *)
  preds : int array;  (* all predicate ids *)
}

let compare_pair (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let node_signature out_edges in_edges =
  let s = empty_sig () in
  Array.iter
    (fun (p, o) ->
      set_bit s (bit_of 0 p 0);
      set_bit s (bit_of 2 p o))
    out_edges;
  Array.iter
    (fun (p, v) ->
      set_bit s (bit_of 1 p 0);
      set_bit s (bit_of 3 p v))
    in_edges;
  s

let block_size = 64

let load triples =
  let dict, encoded = Term_dict.encode_triples triples in
  let n = Term_dict.size dict in
  let out_l = Array.make (max n 1) [] and in_l = Array.make (max n 1) [] in
  Array.iter
    (fun (s, p, o) ->
      out_l.(s) <- (p, o) :: out_l.(s);
      in_l.(o) <- (p, s) :: in_l.(o))
    encoded;
  let freeze l =
    let a = Array.of_list l in
    Array.sort compare_pair a;
    a
  in
  let out_adj = Array.map freeze out_l and in_adj = Array.map freeze in_l in
  let sigs = Array.init n (fun v -> node_signature out_adj.(v) in_adj.(v)) in
  let blocks = ref [] in
  let i = ref 0 in
  while !i < n do
    let last = min (n - 1) (!i + block_size - 1) in
    let acc = empty_sig () in
    for v = !i to last do
      or_sig acc sigs.(v)
    done;
    blocks := (acc, !i, last) :: !blocks;
    i := last + 1
  done;
  let pred_set = Hashtbl.create 64 in
  Array.iter (fun (_, p, _) -> Hashtbl.replace pred_set p ()) encoded;
  {
    dict;
    n;
    out_adj;
    in_adj;
    sigs;
    blocks = List.rev !blocks;
    preds = Array.of_seq (Hashtbl.to_seq_keys pred_set);
  }

let node_count t = t.n

(* Query-vertex signature from its constant context. *)
let query_signature patterns slot =
  let s = empty_sig () in
  let informative = ref false in
  List.iter
    (fun p ->
      match (p.Encoded.s, p.Encoded.p, p.Encoded.o) with
      | Encoded.Slot v, Encoded.Bound pr, other when v = slot ->
          informative := true;
          set_bit s (bit_of 0 pr 0);
          (match other with
          | Encoded.Bound o -> set_bit s (bit_of 2 pr o)
          | Encoded.Slot _ -> ())
      | other, Encoded.Bound pr, Encoded.Slot v when v = slot ->
          informative := true;
          set_bit s (bit_of 1 pr 0);
          (match other with
          | Encoded.Bound sb -> set_bit s (bit_of 3 pr sb)
          | Encoded.Slot _ -> ())
      | _ -> ())
    patterns;
  if !informative then Some s else None

(* Filter step: walk the block level, then test member signatures. *)
let filter t qsig =
  let out = ref [] in
  List.iter
    (fun (bsig, first, last) ->
      if subset_sig ~small:qsig ~big:bsig then
        for v = first to last do
          if subset_sig ~small:qsig ~big:t.sigs.(v) then out := v :: !out
        done)
    t.blocks;
  Mgraph.Sorted_ints.of_list !out

(* Does node [a] have an edge [a -p-> b]? *)
let has_out t a p b =
  let adj = t.out_adj.(a) in
  let rec search lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      let c = compare_pair adj.(mid) (p, b) in
      if c = 0 then true else if c < 0 then search (mid + 1) hi else search lo mid
  in
  search 0 (Array.length adj)

let preds_between t a b =
  Array.fold_right
    (fun (p, o) acc -> if o = b then p :: acc else acc)
    t.out_adj.(a) []

exception Stop

let query ?timeout ?limit t (ast : Sparql.Ast.t) =
  let deadline =
    match timeout with
    | None -> Amber.Deadline.never
    | Some s -> Amber.Deadline.after s
  in
  match Encoded.encode t.dict ast with
  | Encoded.Unsatisfiable -> Answer.empty (Sparql.Ast.selected_variables ast)
  | Encoded.Encoded enc ->
      let collector = Answer.collector ~dict:t.dict ~encoded:enc ~ast ~limit in
      let assignment = Array.make (max enc.n_vars 1) (-1) in
      (* Node variables (subject/object position) vs. predicate
         variables (resolved last). *)
      let node_var = Array.make (max enc.n_vars 1) false in
      let pred_var = Array.make (max enc.n_vars 1) false in
      List.iter
        (fun p ->
          let mark flags = function
            | Encoded.Slot v -> flags.(v) <- true
            | Encoded.Bound _ -> ()
          in
          mark node_var p.Encoded.s;
          mark node_var p.Encoded.o;
          mark pred_var p.Encoded.p)
        enc.patterns;
      let node_vars =
        List.filter (fun v -> node_var.(v)) (List.init enc.n_vars Fun.id)
      in
      (* Initial candidate sets from the signature filter. *)
      let all_nodes = lazy (Array.init t.n Fun.id) in
      let candidates =
        List.map
          (fun v ->
            match query_signature enc.patterns v with
            | Some qsig -> (v, filter t qsig)
            | None -> (v, Lazy.force all_nodes))
          node_vars
      in
      (* Edges with constant predicates, for the refinement checks. *)
      let const_edges =
        List.filter_map
          (fun p ->
            match p.Encoded.p with
            | Encoded.Bound pr -> Some (p.Encoded.s, pr, p.Encoded.o)
            | Encoded.Slot _ -> None)
          enc.patterns
      in
      let var_pred_edges =
        List.filter_map
          (fun p ->
            match p.Encoded.p with
            | Encoded.Slot pv -> Some (p.Encoded.s, pv, p.Encoded.o)
            | Encoded.Bound _ -> None)
          enc.patterns
      in
      let endpoint = function
        | Encoded.Bound id -> Some id
        | Encoded.Slot v -> if assignment.(v) >= 0 then Some assignment.(v) else None
      in
      (* Check every constant-predicate edge whose endpoints are bound. *)
      let edges_ok () =
        List.for_all
          (fun (s, pr, o) ->
            match (endpoint s, endpoint o) with
            | Some a, Some b -> has_out t a pr b
            | _ -> true)
          const_edges
      in
      (* Resolve variable-predicate edges once all node vars are bound:
         per predicate slot, intersect the predicate sets of its edges,
         then emit the Cartesian product. *)
      let resolve_pred_vars () =
        let constraints = Hashtbl.create 4 in
        let feasible =
          List.for_all
            (fun (s, pv, o) ->
              match (endpoint s, endpoint o) with
              | Some a, Some b ->
                  let ps = Mgraph.Sorted_ints.of_list (preds_between t a b) in
                  let ps =
                    (* A slot shared between predicate and node position
                       must agree with the node binding. *)
                    if node_var.(pv) && assignment.(pv) >= 0 then
                      if Mgraph.Sorted_ints.mem ps assignment.(pv) then
                        [| assignment.(pv) |]
                      else [||]
                    else ps
                  in
                  let merged =
                    match Hashtbl.find_opt constraints pv with
                    | None -> ps
                    | Some old -> Mgraph.Sorted_ints.inter old ps
                  in
                  Hashtbl.replace constraints pv merged;
                  Array.length merged > 0
              | _ -> false (* an unbound endpoint: only var-pred context *))
            var_pred_edges
        in
        if not feasible then ()
        else begin
          let slots = Hashtbl.fold (fun k v acc -> (k, v) :: acc) constraints [] in
          let rec product = function
            | [] -> if Answer.add collector assignment = `Stop then raise Stop
            | (pv, ps) :: rest ->
                Array.iter
                  (fun pid ->
                    assignment.(pv) <- pid;
                    product rest)
                  ps;
                assignment.(pv) <- -1
          in
          product slots
        end
      in
      let finish_assignment () =
        if var_pred_edges = [] then begin
          if Answer.add collector assignment = `Stop then raise Stop
        end
        else resolve_pred_vars ()
      in
      (* Backtracking refinement over node variables; next variable =
         smallest candidate set among those adjacent to a matched one. *)
      let adjacent_to_matched v =
        List.exists
          (fun (s, _, o) ->
            let touches c = c = Encoded.Slot v in
            let other_bound c =
              match c with
              | Encoded.Bound _ -> true
              | Encoded.Slot w -> assignment.(w) >= 0
            in
            (touches s && other_bound o) || (touches o && other_bound s))
          const_edges
      in
      let rec refine remaining =
        Amber.Deadline.check deadline;
        match remaining with
        | [] -> finish_assignment ()
        | _ ->
            let scored =
              List.map
                (fun (v, cands) ->
                  ((v, cands), (not (adjacent_to_matched v), Array.length cands)))
                remaining
            in
            let (v, cands), _ =
              List.fold_left
                (fun (best, bscore) (x, score) ->
                  if score < bscore then (x, score) else (best, bscore))
                (List.hd scored)
                (List.tl scored)
            in
            let rest = List.filter (fun (w, _) -> w <> v) remaining in
            Array.iter
              (fun node ->
                Amber.Deadline.check deadline;
                assignment.(v) <- node;
                if edges_ok () then refine rest;
                assignment.(v) <- -1)
              cands
        in
      (try
         if node_vars = [] then begin
           (* Ground or predicate-variable-only query. *)
           if edges_ok () then finish_assignment ()
         end
         else refine candidates
       with Stop -> ());
      Answer.finish collector

let filter_candidates t ast var =
  match Encoded.encode t.dict ast with
  | Encoded.Unsatisfiable -> None
  | Encoded.Encoded enc -> (
      match Encoded.slot_of_var enc var with
      | None -> None
      | Some slot -> (
          match query_signature enc.patterns slot with
          | None -> None
          | Some qsig -> Some (filter t qsig)))
