type t = Amber.Engine.t

let name = "amber"
let load triples = Amber.Engine.build triples
let engine t = t

let query ?timeout ?limit t ast =
  let { Amber.Engine.variables; rows; truncated } =
    Amber.Engine.query ?timeout ?limit t ast
  in
  { Answer.variables; rows; truncated }
