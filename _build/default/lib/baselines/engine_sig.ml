(** Common signature implemented by every baseline engine. *)

module type S = sig
  type t

  val name : string

  val load : Rdf.Triple.t list -> t

  val query : ?timeout:float -> ?limit:int -> t -> Sparql.Ast.t -> Answer.t
  (** @raise Amber.Deadline.Expired on timeout. *)
end
