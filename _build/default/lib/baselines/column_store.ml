let name = "virtuoso-like"

type t = {
  dict : Term_dict.t;
  pso : (int, (int * int) array) Hashtbl.t;  (* pred -> sorted (s, o) *)
  pos : (int, (int * int) array) Hashtbl.t;  (* pred -> sorted (o, s) *)
  preds : int array;
}

let max_intermediate = 2_000_000

let compare_pair (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let load triples =
  let dict, encoded = Term_dict.encode_triples triples in
  let buckets = Hashtbl.create 64 in
  Array.iter
    (fun (s, p, o) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt buckets p) in
      Hashtbl.replace buckets p ((s, o) :: l))
    encoded;
  let pso = Hashtbl.create 64 and pos = Hashtbl.create 64 in
  let preds = ref [] in
  Hashtbl.iter
    (fun p pairs ->
      preds := p :: !preds;
      let a = Array.of_list pairs in
      Array.sort compare_pair a;
      (* Deduplicate at load time, as a bulk loader would. *)
      let n = Array.length a in
      let k = ref 0 in
      for i = 0 to n - 1 do
        if !k = 0 || compare_pair a.(i) a.(!k - 1) <> 0 then begin
          a.(!k) <- a.(i);
          incr k
        end
      done;
      let so = Array.sub a 0 !k in
      Hashtbl.replace pso p so;
      let os = Array.map (fun (s, o) -> (o, s)) so in
      Array.sort compare_pair os;
      Hashtbl.replace pos p os)
    buckets;
  { dict; pso; pos; preds = Array.of_list !preds }

(* Range of entries in [data] whose first component equals [key]. *)
let first_range data key =
  let n = Array.length data in
  let rec search strict lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let k = fst data.(mid) in
      if k > key || (k = key && not strict) then search strict lo mid
      else search strict (mid + 1) hi
  in
  let lo = search false 0 n and hi = search true 0 n in
  (lo, hi)

(* Emit the (pred, s, o) tuples of one predicate table that match the
   constant subject/object components. *)
let scan_pred t p ~s_const ~o_const ~emit =
  let emit_checked (s, o) =
    match (s_const, o_const) with
    | Some sc, _ when sc <> s -> ()
    | _, Some oc when oc <> o -> ()
    | _ -> emit p (s, o)
  in
  match (s_const, o_const) with
  | Some sc, _ -> (
      match Hashtbl.find_opt t.pso p with
      | None -> ()
      | Some data ->
          let lo, hi = first_range data sc in
          for i = lo to hi - 1 do
            emit_checked data.(i)
          done)
  | None, Some oc -> (
      match Hashtbl.find_opt t.pos p with
      | None -> ()
      | Some data ->
          let lo, hi = first_range data oc in
          for i = lo to hi - 1 do
            let o, s = data.(i) in
            emit_checked (s, o)
          done)
  | None, None -> (
      match Hashtbl.find_opt t.pso p with
      | None -> ()
      | Some data -> Array.iter emit_checked data)

let estimate t ~pred ~s_const ~o_const =
  let one p =
    match Hashtbl.find_opt t.pso p with
    | None -> 0
    | Some data -> (
        match (s_const, o_const) with
        | Some sc, _ ->
            let lo, hi = first_range data sc in
            hi - lo
        | None, Some oc -> (
            match Hashtbl.find_opt t.pos p with
            | None -> 0
            | Some d ->
                let lo, hi = first_range d oc in
                hi - lo)
        | None, None -> Array.length data)
  in
  match pred with
  | Some p -> one p
  | None -> Array.fold_left (fun acc p -> acc + one p) 0 t.preds

(* Intermediate relation: materialized rows over a fixed slot list. *)
type relation = { vars : int list; rows : int array list; size : int }

exception Blowup

let query ?timeout ?limit t (ast : Sparql.Ast.t) =
  let deadline =
    match timeout with
    | None -> Amber.Deadline.never
    | Some s -> Amber.Deadline.after s
  in
  match Encoded.encode t.dict ast with
  | Encoded.Unsatisfiable -> Answer.empty (Sparql.Ast.selected_variables ast)
  | Encoded.Encoded enc ->
      let const = function
        | Encoded.Bound id -> Some id
        | Encoded.Slot _ -> None
      in
      (* Static pattern order, chosen once: smallest estimated table
         first, then greedily the smallest pattern sharing a variable
         with what has been joined so far — a stats-driven left-deep
         plan that avoids Cartesian products, as a column-store
         optimizer would produce. *)
      let ordered =
        let estimate_of p =
          estimate t ~pred:(const p.Encoded.p) ~s_const:(const p.Encoded.s)
            ~o_const:(const p.Encoded.o)
        in
        let bound = Hashtbl.create 8 in
        let connected p = List.exists (Hashtbl.mem bound) (Encoded.pattern_vars p) in
        let rec build acc = function
          | [] -> List.rev acc
          | remaining ->
              let score p = ((not (connected p)) || acc = [], estimate_of p) in
              let best =
                List.fold_left
                  (fun best p ->
                    match best with
                    | None -> Some (p, score p)
                    | Some (_, s) when score p < s -> Some (p, score p)
                    | Some _ -> best)
                  None remaining
              in
              let p = match best with Some (p, _) -> p | None -> assert false in
              List.iter (fun v -> Hashtbl.replace bound v ()) (Encoded.pattern_vars p);
              build (p :: acc) (List.filter (fun q -> q != p) remaining)
        in
        build [] enc.patterns
      in
      (* One hash join: current relation ⋈ pattern scan. *)
      let join relation p =
        Amber.Deadline.check deadline;
        let pattern_slots = Encoded.pattern_vars p in
        let shared = List.filter (fun v -> List.mem v relation.vars) pattern_slots in
        let fresh = List.filter (fun v -> not (List.mem v relation.vars)) pattern_slots in
        let position slot =
          let rec loop i = function
            | [] -> assert false
            | v :: _ when v = slot -> i
            | _ :: rest -> loop (i + 1) rest
          in
          loop 0 relation.vars
        in
        let shared_positions = List.map position shared in
        let index = Hashtbl.create (max 16 relation.size) in
        List.iter
          (fun row ->
            let key = List.map (fun i -> row.(i)) shared_positions in
            let old = Option.value ~default:[] (Hashtbl.find_opt index key) in
            Hashtbl.replace index key (row :: old))
          relation.rows;
        let out = ref [] and out_size = ref 0 in
        let emit pid (s, o) =
          Amber.Deadline.check deadline;
          (* Bindings contributed by this tuple, with intra-pattern
             consistency (covers shapes like [?x p ?x]). *)
          let bindings = ref [] in
          let ok = ref true in
          let bind comp value =
            match comp with
            | Encoded.Bound id -> if id <> value then ok := false
            | Encoded.Slot v -> (
                match List.assoc_opt v !bindings with
                | Some existing -> if existing <> value then ok := false
                | None -> bindings := (v, value) :: !bindings)
          in
          bind p.Encoded.s s;
          bind p.Encoded.p pid;
          bind p.Encoded.o o;
          if !ok then begin
            let key = List.map (fun v -> List.assoc v !bindings) shared in
            match Hashtbl.find_opt index key with
            | None -> ()
            | Some rows ->
                let extension =
                  Array.of_list (List.map (fun v -> List.assoc v !bindings) fresh)
                in
                List.iter
                  (fun row ->
                    out := Array.append row extension :: !out;
                    incr out_size;
                    if !out_size > max_intermediate then raise Blowup)
                  rows
          end
        in
        (match p.Encoded.p with
        | Encoded.Bound pid ->
            scan_pred t pid ~s_const:(const p.Encoded.s)
              ~o_const:(const p.Encoded.o) ~emit
        | Encoded.Slot _ ->
            Array.iter
              (fun pid ->
                scan_pred t pid ~s_const:(const p.Encoded.s)
                  ~o_const:(const p.Encoded.o) ~emit)
              t.preds);
        { vars = relation.vars @ fresh; rows = !out; size = !out_size }
      in
      let initial = { vars = []; rows = [ [||] ]; size = 1 } in
      (match List.fold_left join initial ordered with
      | final ->
          let collector = Answer.collector ~dict:t.dict ~encoded:enc ~ast ~limit in
          let assignment = Array.make (max enc.n_vars 1) (-1) in
          (try
             List.iter
               (fun row ->
                 List.iteri (fun i v -> assignment.(v) <- row.(i)) final.vars;
                 if Answer.add collector assignment = `Stop then raise Exit)
               final.rows
           with Exit -> ());
          Answer.finish collector
      | exception Blowup ->
          (* A real column store would spill and grind; in the paper's
             protocol that query simply fails the time budget. *)
          raise Amber.Deadline.Expired)

let predicate_count t = Array.length t.preds
