(** gStore-style baseline: filter-and-refine over vertex bit
    signatures.

    Every term node gets a fixed-width bit signature encoding its
    incident (direction, predicate) pairs and (direction, predicate,
    neighbour) pairs; signatures are organized in a VS-tree-like
    hierarchy of OR-ed block signatures. A query vertex's signature is
    built from its constant context; the {e filter} step walks the tree
    collecting nodes whose signature is a superset, and the {e refine}
    step runs a backtracking (homomorphic) match over adjacency lists.
    Variable predicates are resolved in a final enumeration phase. *)

include Engine_sig.S

val signature_words : int
(** Width of the bit signatures, in 63-bit words. *)

val node_count : t -> int

val filter_candidates : t -> Sparql.Ast.t -> string -> int array option
(** Candidate node count the filter step yields for one variable of a
    query ([None] if the variable or query is degenerate) — exposed for
    tests and the ablation bench. *)
