(** Query encoding shared by the baseline engines.

    Variables get dense slots; constants are looked up in the term
    dictionary. A constant absent from the dictionary makes the whole
    query empty — encoded as [Unsatisfiable]. *)

type component = Bound of int | Slot of int

type pattern = { s : component; p : component; o : component }

type t = {
  n_vars : int;
  var_names : string array;  (** slot -> variable name *)
  patterns : pattern list;
}

type result = Encoded of t | Unsatisfiable

val encode : Term_dict.t -> Sparql.Ast.t -> result

val slot_of_var : t -> string -> int option

val pattern_vars : pattern -> int list
(** Distinct slots of a pattern. *)
