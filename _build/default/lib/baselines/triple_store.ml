let name = "x-rdf3x-like"

(* Key orders of the six permutations. Components are addressed as
   0 = subject, 1 = predicate, 2 = object. *)
let orders = [| [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |];
                [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |] |]

type t = {
  dict : Term_dict.t;
  perms : (int * int * int) array array;  (* permuted key tuples, sorted *)
  mutable scans : int;
}

let component (s, p, o) = function 0 -> s | 1 -> p | _ -> o

let permute order triple =
  (component triple order.(0), component triple order.(1), component triple order.(2))

(* Recover the original (s, p, o) from a permuted tuple. *)
let unpermute order (k1, k2, k3) =
  let out = [| 0; 0; 0 |] in
  out.(order.(0)) <- k1;
  out.(order.(1)) <- k2;
  out.(order.(2)) <- k3;
  (out.(0), out.(1), out.(2))

let compare_triple (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

let load triples =
  let dict, encoded = Term_dict.encode_triples triples in
  (* Deduplicate once, in SPO order. *)
  let spo = Array.copy encoded in
  Array.sort compare_triple spo;
  let dedup =
    if Array.length spo = 0 then spo
    else begin
      let k = ref 1 in
      for i = 1 to Array.length spo - 1 do
        if compare_triple spo.(i) spo.(!k - 1) <> 0 then begin
          spo.(!k) <- spo.(i);
          incr k
        end
      done;
      Array.sub spo 0 !k
    end
  in
  let perms =
    Array.map
      (fun order ->
        let a = Array.map (permute order) dedup in
        Array.sort compare_triple a;
        a)
      orders
  in
  { dict; perms; scans = 0 }

(* Smallest index whose permuted tuple has [prefix] as prefix. *)
let lower_bound data prefix =
  let matches_from (k1, k2, k3) =
    (* compare prefix against tuple; prefix components are options *)
    let cmp p k = match p with None -> 0 | Some v -> Int.compare v k in
    let c = cmp prefix.(0) k1 in
    if c <> 0 then c
    else
      let c = cmp prefix.(1) k2 in
      if c <> 0 then c else cmp prefix.(2) k3
  in
  let n = Array.length data in
  (* first index with prefix <= tuple *)
  let rec lo_search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if matches_from data.(mid) <= 0 then lo_search lo mid else lo_search (mid + 1) hi
  in
  (* first index with prefix < tuple strictly (i.e. tuple beyond range) *)
  let rec hi_search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if matches_from data.(mid) < 0 then hi_search lo mid else hi_search (mid + 1) hi
  in
  let lo = lo_search 0 n in
  let hi = hi_search lo n in
  (lo, hi)

(* Pick the permutation whose key prefix covers the bound components. *)
let perm_for bound_s bound_p bound_o =
  match (bound_s, bound_p, bound_o) with
  | Some _, Some _, _ -> 0 (* SPO *)
  | Some _, None, Some _ -> 4 (* OSP: prefix (o, s) *)
  | Some _, None, None -> 0
  | None, Some _, Some _ -> 3 (* POS *)
  | None, Some _, None -> 2 (* PSO *)
  | None, None, Some _ -> 5 (* OPS *)
  | None, None, None -> 0

let range t bound_s bound_p bound_o =
  t.scans <- t.scans + 1;
  let pi = perm_for bound_s bound_p bound_o in
  let order = orders.(pi) in
  let comp = function 0 -> bound_s | 1 -> bound_p | _ -> bound_o in
  let prefix = [| comp order.(0); comp order.(1); comp order.(2) |] in
  (* The usable prefix must be contiguous: stop at the first unbound
     key column. *)
  let contiguous = Array.copy prefix in
  let stop = ref false in
  for i = 0 to 2 do
    if !stop || contiguous.(i) = None then begin
      stop := true;
      contiguous.(i) <- None
    end
  done;
  let data = t.perms.(pi) in
  let lo, hi = lower_bound data contiguous in
  (pi, data, lo, hi)

let cardinality t bound_s bound_p bound_o =
  let _, _, lo, hi = range t bound_s bound_p bound_o in
  hi - lo

exception Stop

let query ?timeout ?limit t (ast : Sparql.Ast.t) =
  let deadline =
    match timeout with
    | None -> Amber.Deadline.never
    | Some s -> Amber.Deadline.after s
  in
  match Encoded.encode t.dict ast with
  | Encoded.Unsatisfiable -> Answer.empty (Sparql.Ast.selected_variables ast)
  | Encoded.Encoded enc ->
      let collector = Answer.collector ~dict:t.dict ~encoded:enc ~ast ~limit in
      let assignment = Array.make (max enc.n_vars 1) (-1) in
      let value = function
        | Encoded.Bound id -> Some id
        | Encoded.Slot i -> if assignment.(i) >= 0 then Some assignment.(i) else None
      in
      let const = function Encoded.Bound id -> Some id | Encoded.Slot _ -> None in
      (* Static join order, chosen once before execution from constant
         selectivities — the statistics-driven plan of RDF-3X. (No
         adaptive reordering during execution: a mis-estimated plan on a
         large query runs to its timeout, which is exactly the behaviour
         the paper observes.) *)
      let plan =
        let bound = Hashtbl.create 8 in
        let connected p = List.exists (Hashtbl.mem bound) (Encoded.pattern_vars p) in
        let base p = cardinality t (const p.Encoded.s) (const p.Encoded.p) (const p.Encoded.o) in
        let rec build acc = function
          | [] -> List.rev acc
          | remaining ->
              let score p = ((not (connected p)) || acc = [], base p) in
              let best =
                List.fold_left
                  (fun best p ->
                    match best with
                    | None -> Some (p, score p)
                    | Some (_, s) when score p < s -> Some (p, score p)
                    | Some _ -> best)
                  None remaining
              in
              let p = match best with Some (p, _) -> p | None -> assert false in
              List.iter (fun v -> Hashtbl.replace bound v ()) (Encoded.pattern_vars p);
              build (p :: acc) (List.filter (fun q -> q != p) remaining)
        in
        build [] enc.patterns
      in
      let rec go remaining =
        Amber.Deadline.check deadline;
        match remaining with
        | [] -> if Answer.add collector assignment = `Stop then raise Stop
        | p :: rest ->
            let pi, data, lo, hi =
              range t (value p.Encoded.s) (value p.Encoded.p) (value p.Encoded.o)
            in
            let order = orders.(pi) in
            for i = lo to hi - 1 do
              Amber.Deadline.check deadline;
              let s, pr, o = unpermute order data.(i) in
              (* Bind unbound slots, checking consistency (covers vars
                 repeated inside one pattern and non-prefix bounds). *)
              let touched = ref [] in
              let ok = ref true in
              let bind comp actual =
                if !ok then
                  match comp with
                  | Encoded.Bound id -> if id <> actual then ok := false
                  | Encoded.Slot slot ->
                      if assignment.(slot) = -1 then begin
                        assignment.(slot) <- actual;
                        touched := slot :: !touched
                      end
                      else if assignment.(slot) <> actual then ok := false
              in
              bind p.Encoded.s s;
              bind p.Encoded.p pr;
              bind p.Encoded.o o;
              if !ok then go rest;
              List.iter (fun slot -> assignment.(slot) <- -1) !touched
            done
      in
      (try go plan with Stop -> ());
      Answer.finish collector

let permutation_count t = Array.length t.perms
let scan_count t = t.scans
