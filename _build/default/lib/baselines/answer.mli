(** Result assembly shared by the baseline engines: projection,
    DISTINCT and LIMIT, mirroring {!Amber.Engine.answer}. *)

type t = {
  variables : string list;
  rows : Rdf.Term.t option list list;
  truncated : bool;
}

val empty : string list -> t

type collector

val collector :
  dict:Term_dict.t ->
  encoded:Encoded.t ->
  ast:Sparql.Ast.t ->
  limit:int option ->
  collector

val add : collector -> int array -> [ `Continue | `Stop ]
(** Feed one full assignment (slot -> term id). [`Stop] once the
    effective limit is reached. *)

val finish : collector -> t
