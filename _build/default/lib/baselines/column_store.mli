(** Virtuoso-style baseline: per-predicate column projections (a sorted
    (S,O) and a sorted (O,S) table per predicate) evaluated
    table-at-a-time with hash joins, patterns ordered statically by
    estimated cardinality — the column-store architecture the paper
    compares against.

    Intermediate relations are materialized, as in a real column store;
    a runaway intermediate (beyond [max_intermediate]) is reported as a
    timeout, which is how the paper's experiments would observe it. *)

include Engine_sig.S

val max_intermediate : int
(** Safety bound on materialized intermediate rows (2 million). *)

val predicate_count : t -> int
