let name = "jena-like"

type t = {
  dict : Term_dict.t;
  triples : (int * int * int) array;  (* deduplicated *)
  by_s : (int, int list) Hashtbl.t;  (* component value -> triple indexes *)
  by_p : (int, int list) Hashtbl.t;
  by_o : (int, int list) Hashtbl.t;
}

let compare_triple (a1, a2, a3) (b1, b2, b3) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c
  else
    let c = Int.compare a2 b2 in
    if c <> 0 then c else Int.compare a3 b3

let load triples =
  let dict, encoded = Term_dict.encode_triples triples in
  Array.sort compare_triple encoded;
  let n = Array.length encoded in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if !k = 0 || compare_triple encoded.(i) encoded.(!k - 1) <> 0 then begin
      encoded.(!k) <- encoded.(i);
      incr k
    end
  done;
  let triples = Array.sub encoded 0 !k in
  let by_s = Hashtbl.create 1024
  and by_p = Hashtbl.create 64
  and by_o = Hashtbl.create 1024 in
  let push tbl key i =
    Hashtbl.replace tbl key (i :: Option.value ~default:[] (Hashtbl.find_opt tbl key))
  in
  Array.iteri
    (fun i (s, p, o) ->
      push by_s s i;
      push by_p p i;
      push by_o o i)
    triples;
  { dict; triples; by_s; by_p; by_o }

let query ?timeout ?limit t (ast : Sparql.Ast.t) =
  let deadline =
    match timeout with
    | None -> Amber.Deadline.never
    | Some s -> Amber.Deadline.after s
  in
  match Encoded.encode t.dict ast with
  | Encoded.Unsatisfiable -> Answer.empty (Sparql.Ast.selected_variables ast)
  | Encoded.Encoded enc ->
      let collector = Answer.collector ~dict:t.dict ~encoded:enc ~ast ~limit in
      let assignment = Array.make (max enc.n_vars 1) (-1) in
      let value = function
        | Encoded.Bound id -> Some id
        | Encoded.Slot i -> if assignment.(i) >= 0 then Some assignment.(i) else None
      in
      let exception Stop in
      (* find(s?, p?, o?): pick one bound component's hash bucket, then
         filter — the classic statement-level find. *)
      let candidates p =
        let bucket tbl key =
          Option.value ~default:[] (Hashtbl.find_opt tbl key)
        in
        match (value p.Encoded.s, value p.Encoded.p, value p.Encoded.o) with
        | Some s, _, _ -> `Indexes (bucket t.by_s s)
        | None, _, Some o -> `Indexes (bucket t.by_o o)
        | None, Some pr, None -> `Indexes (bucket t.by_p pr)
        | None, None, None -> `All
      in
      let rec go = function
        | [] -> if Answer.add collector assignment = `Stop then raise Stop
        | p :: rest ->
            Amber.Deadline.check deadline;
            let try_triple (s, pr, o) =
              Amber.Deadline.check deadline;
              let touched = ref [] in
              let ok = ref true in
              let bind comp actual =
                if !ok then
                  match comp with
                  | Encoded.Bound id -> if id <> actual then ok := false
                  | Encoded.Slot slot ->
                      if assignment.(slot) = -1 then begin
                        assignment.(slot) <- actual;
                        touched := slot :: !touched
                      end
                      else if assignment.(slot) <> actual then ok := false
              in
              bind p.Encoded.s s;
              bind p.Encoded.p pr;
              bind p.Encoded.o o;
              if !ok then go rest;
              List.iter (fun slot -> assignment.(slot) <- -1) !touched
            in
            (match candidates p with
            | `Indexes is -> List.iter (fun i -> try_triple t.triples.(i)) is
            | `All -> Array.iter try_triple t.triples)
      in
      (try go enc.patterns with Stop -> ());
      Answer.finish collector

let triple_count t = Array.length t.triples
