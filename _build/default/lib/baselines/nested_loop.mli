(** Jena-style baseline: an in-memory statement table with one hash
    index per component (find-by-subject / predicate / object),
    evaluated as a binding-at-a-time nested-loop join in {e textual
    pattern order} — no join reordering, like a plain [find()]-driven
    BGP evaluator. The least robust competitor in the paper, by
    design. *)

include Engine_sig.S

val triple_count : t -> int
