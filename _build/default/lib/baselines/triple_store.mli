(** x-RDF-3X-style baseline: one big triple table materialized in all
    six (S,P,O) permutations, each sorted; query evaluation is an
    index nested-loop join whose next pattern is picked greedily by the
    exact range cardinality under the current bindings — the
    "exhaustive indexing + selectivity-driven join ordering" design of
    RDF-3X. *)

include Engine_sig.S

val permutation_count : t -> int
(** Always 6; exposed for tests. *)

val scan_count : t -> int
(** Number of index range scans performed since [load] (statistics for
    the ablation benchmarks). *)
