(** {!Amber.Engine} wrapped in the common baseline signature, so the
    benchmark harness and the cross-engine tests can drive all engines
    uniformly. *)

include Engine_sig.S

val engine : t -> Amber.Engine.t
