(** Term-level dictionary shared by the baseline engines.

    Unlike AMbER's multigraph encoding, the relational baselines keep
    every RDF term — IRI, blank node or literal — as a plain node id, as
    x-RDF-3X, Virtuoso, Jena and gStore all do. *)

type t

val create : unit -> t

val intern : t -> Rdf.Term.t -> int

val find : t -> Rdf.Term.t -> int option

val term : t -> int -> Rdf.Term.t

val size : t -> int

val encode_triples : Rdf.Triple.t list -> t * (int * int * int) array
(** Intern a tripleset; returns the dictionary and the encoded triples
    in input order (duplicates preserved — engines deduplicate as their
    architecture dictates). *)
