type component = Bound of int | Slot of int

type pattern = { s : component; p : component; o : component }

type t = { n_vars : int; var_names : string array; patterns : pattern list }

type result = Encoded of t | Unsatisfiable

exception Unsat

let encode dict (ast : Sparql.Ast.t) =
  let slots = Hashtbl.create 8 in
  let names = ref [] in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
        let i = Hashtbl.length slots in
        Hashtbl.add slots v i;
        names := v :: !names;
        i
  in
  let component = function
    | Sparql.Ast.Var v -> Slot (slot_of v)
    | Sparql.Ast.Iri iri -> (
        match Term_dict.find dict (Rdf.Term.iri iri) with
        | Some id -> Bound id
        | None -> raise Unsat)
    | Sparql.Ast.Lit lit -> (
        match Term_dict.find dict (Rdf.Term.Literal lit) with
        | Some id -> Bound id
        | None -> raise Unsat)
  in
  match
    List.map
      (fun { Sparql.Ast.subject; predicate; obj } ->
        { s = component subject; p = component predicate; o = component obj })
      ast.where
  with
  | exception Unsat -> Unsatisfiable
  | patterns ->
      Encoded
        {
          n_vars = Hashtbl.length slots;
          var_names = Array.of_list (List.rev !names);
          patterns;
        }

let slot_of_var t v =
  let n = Array.length t.var_names in
  let rec loop i =
    if i >= n then None
    else if String.equal t.var_names.(i) v then Some i
    else loop (i + 1)
  in
  loop 0

let pattern_vars { s; p; o } =
  let add acc = function Slot i when not (List.mem i acc) -> i :: acc | _ -> acc in
  List.rev (add (add (add [] s) p) o)
