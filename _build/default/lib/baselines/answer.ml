type t = {
  variables : string list;
  rows : Rdf.Term.t option list list;
  truncated : bool;
}

let empty variables = { variables; rows = []; truncated = false }

type collector = {
  variables : string list;
  slots : int option list;  (* per selected variable *)
  dict : Term_dict.t;
  distinct : bool;
  order_by : (string * Sparql.Ast.sort_direction) list;
  offset : int option;
  limit : int option;  (* final row cap *)
  gather_cap : int option;  (* rows to gather before modifiers *)
  seen : (int option list, unit) Hashtbl.t;
  mutable rows : Rdf.Term.t option list list;
  mutable count : int;
  mutable stopped_early : bool;
}

let collector ~dict ~encoded ~ast ~limit =
  let variables = Sparql.Ast.selected_variables ast in
  let effective =
    match (limit, ast.Sparql.Ast.limit) with
    | None, None -> None
    | Some l, None | None, Some l -> Some l
    | Some a, Some b -> Some (min a b)
  in
  let gather_cap =
    if ast.Sparql.Ast.order_by <> [] then None
    else
      match effective with
      | None -> None
      | Some l -> Some (l + Option.value ~default:0 ast.Sparql.Ast.offset)
  in
  {
    variables;
    slots = List.map (Encoded.slot_of_var encoded) variables;
    dict;
    distinct = ast.Sparql.Ast.distinct;
    order_by = ast.Sparql.Ast.order_by;
    offset = ast.Sparql.Ast.offset;
    limit = effective;
    gather_cap;
    seen = Hashtbl.create 64;
    rows = [];
    count = 0;
    stopped_early = false;
  }

let add c assignment =
  let key = List.map (Option.map (fun slot -> assignment.(slot))) c.slots in
  let fresh =
    if c.distinct then
      if Hashtbl.mem c.seen key then false
      else begin
        Hashtbl.add c.seen key ();
        true
      end
    else true
  in
  if fresh then begin
    let row =
      List.map (Option.map (fun id -> Term_dict.term c.dict id)) key
    in
    c.rows <- row :: c.rows;
    c.count <- c.count + 1
  end;
  match c.gather_cap with
  | Some l when c.count >= l ->
      c.stopped_early <- true;
      `Stop
  | _ -> `Continue

let finish c =
  let rows = List.rev c.rows in
  let rows =
    if c.order_by = [] then rows
    else List.stable_sort (Sparql.Ast.compare_rows c.order_by c.variables) rows
  in
  let rows =
    match c.offset with
    | None | Some 0 -> rows
    | Some o -> List.filteri (fun i _ -> i >= o) rows
  in
  let rows, truncated =
    match c.limit with
    | None -> (rows, c.stopped_early)
    | Some l ->
        let total = List.length rows in
        (List.filteri (fun i _ -> i < l) rows, c.stopped_early || total > l)
  in
  { variables = c.variables; rows; truncated }
