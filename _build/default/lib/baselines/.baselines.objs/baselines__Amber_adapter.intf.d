lib/baselines/amber_adapter.mli: Amber Engine_sig
