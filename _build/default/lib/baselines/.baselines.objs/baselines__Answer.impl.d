lib/baselines/answer.ml: Array Encoded Hashtbl List Option Rdf Sparql Term_dict
