lib/baselines/term_dict.ml: Array Hashtbl List Rdf
