lib/baselines/column_store.ml: Amber Answer Array Encoded Hashtbl Int List Option Sparql Term_dict
