lib/baselines/sig_store.ml: Amber Answer Array Encoded Fun Hashtbl Int Lazy List Mgraph Sparql Term_dict
