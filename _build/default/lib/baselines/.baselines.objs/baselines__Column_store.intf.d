lib/baselines/column_store.mli: Engine_sig
