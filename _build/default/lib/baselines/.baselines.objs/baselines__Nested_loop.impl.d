lib/baselines/nested_loop.ml: Amber Answer Array Encoded Hashtbl Int List Option Sparql Term_dict
