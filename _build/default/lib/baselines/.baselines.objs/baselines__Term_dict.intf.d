lib/baselines/term_dict.mli: Rdf
