lib/baselines/encoded.mli: Sparql Term_dict
