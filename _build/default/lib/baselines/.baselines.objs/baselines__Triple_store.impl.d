lib/baselines/triple_store.ml: Amber Answer Array Encoded Hashtbl Int List Sparql Term_dict
