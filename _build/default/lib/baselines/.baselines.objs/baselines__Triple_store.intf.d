lib/baselines/triple_store.mli: Engine_sig
