lib/baselines/encoded.ml: Array Hashtbl List Rdf Sparql String Term_dict
