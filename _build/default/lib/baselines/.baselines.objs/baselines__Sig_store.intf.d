lib/baselines/sig_store.mli: Engine_sig Sparql
