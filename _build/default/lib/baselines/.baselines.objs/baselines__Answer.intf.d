lib/baselines/answer.mli: Encoded Rdf Sparql Term_dict
