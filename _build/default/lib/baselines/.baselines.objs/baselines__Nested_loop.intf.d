lib/baselines/nested_loop.mli: Engine_sig
