lib/baselines/amber_adapter.ml: Amber Answer
