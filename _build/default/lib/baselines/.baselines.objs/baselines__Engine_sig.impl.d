lib/baselines/engine_sig.ml: Answer Rdf Sparql
