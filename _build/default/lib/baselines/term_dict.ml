type t = {
  ids : (string, int) Hashtbl.t;
  mutable terms : Rdf.Term.t array;
  mutable size : int;
}

let create () = { ids = Hashtbl.create 1024; terms = Array.make 1024 (Rdf.Term.iri ""); size = 0 }

let grow t =
  let terms = Array.make (2 * Array.length t.terms) (Rdf.Term.iri "") in
  Array.blit t.terms 0 terms 0 t.size;
  t.terms <- terms

let intern t term =
  let key = Rdf.Term.to_string term in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = t.size in
      if id = Array.length t.terms then grow t;
      t.terms.(id) <- term;
      Hashtbl.add t.ids key id;
      t.size <- id + 1;
      id

let find t term = Hashtbl.find_opt t.ids (Rdf.Term.to_string term)

let term t id =
  if id < 0 || id >= t.size then invalid_arg "Term_dict.term: unknown id"
  else t.terms.(id)

let size t = t.size

let encode_triples triples =
  let t = create () in
  let encoded =
    List.map
      (fun { Rdf.Triple.subject; predicate; obj } ->
        (intern t subject, intern t predicate, intern t obj))
      triples
  in
  (t, Array.of_list encoded)
