(** Operations on strictly increasing integer arrays.

    Candidate sets, multi-edge type sets and attribute sets are all kept
    as sorted, duplicate-free [int array]s; set algebra on them is linear
    merging. All functions assume (and preserve) strict ordering. *)

val of_list : int list -> int array
(** Sort and deduplicate. *)

val is_sorted : int array -> bool
(** Strictly increasing (hence duplicate-free)? *)

val mem : int array -> int -> bool
(** Binary search. *)

val subset : int array -> int array -> bool
(** [subset a b] — is every element of [a] in [b]? *)

val inter : int array -> int array -> int array
val union : int array -> int array -> int array
val diff : int array -> int array -> int array

val inter_many : int array list -> int array
(** Intersection of all sets; the intersection of [[]] is undefined and
    raises [Invalid_argument]. Smallest set first is fastest, the
    function sorts by length internally. *)

val equal : int array -> int array -> bool
