(** Vertex signatures (paper Definition 3).

    The signature of a vertex is the multiset of multi-edges incident on
    it, kept separately for incoming ('+' in the paper) and outgoing
    ('−') directions. Each multi-edge is a sorted set of edge types. *)

type t = {
  incoming : int array list;  (** one sorted type set per in-neighbour *)
  outgoing : int array list;  (** one sorted type set per out-neighbour *)
}

val empty : t

val of_vertex : Multigraph.t -> Multigraph.vertex -> t
(** Signature of a data vertex, read off the adjacency lists. *)

val make : incoming:int array list -> outgoing:int array list -> t
(** Build a signature directly (used for query vertices). Type sets are
    sorted/deduplicated by this function. *)

val side : t -> Multigraph.direction -> int array list
(** [side s In] is [s.incoming]; [side s Out] is [s.outgoing]. *)

val pp : Format.formatter -> t -> unit
