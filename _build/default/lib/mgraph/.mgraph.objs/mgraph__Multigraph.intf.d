lib/mgraph/multigraph.mli: Format
