lib/mgraph/sorted_ints.ml: Array Int List
