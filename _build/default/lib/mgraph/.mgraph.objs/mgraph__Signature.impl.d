lib/mgraph/signature.ml: Array Format List Multigraph Sorted_ints String
