lib/mgraph/dict.ml: Array Hashtbl List Printf
