lib/mgraph/sorted_ints.mli:
