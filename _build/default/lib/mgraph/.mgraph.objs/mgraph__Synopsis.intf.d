lib/mgraph/synopsis.mli: Format Multigraph Signature
