lib/mgraph/synopsis.ml: Array Format List Signature Sorted_ints String
