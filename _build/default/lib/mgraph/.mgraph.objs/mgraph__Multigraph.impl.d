lib/mgraph/multigraph.ml: Array Format Hashtbl Int List Printf Sorted_ints
