lib/mgraph/signature.mli: Format Multigraph
