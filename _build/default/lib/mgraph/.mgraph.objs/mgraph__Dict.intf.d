lib/mgraph/dict.mli:
