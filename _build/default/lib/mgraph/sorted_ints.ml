let of_list l =
  let a = Array.of_list l in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    (* Compact duplicates in place, then truncate. *)
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!k - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub a 0 !k
  end

let is_sorted a =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i - 1) < a.(i) && loop (i + 1)) in
  loop 1

let mem a x =
  let rec loop lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then loop (mid + 1) hi
      else loop lo mid
  in
  loop 0 (Array.length a)

let subset a b =
  let na = Array.length a and nb = Array.length b in
  let rec loop i j =
    if i >= na then true
    else if j >= nb then false
    else if a.(i) = b.(j) then loop (i + 1) (j + 1)
    else if a.(i) > b.(j) then loop i (j + 1)
    else false
  in
  loop 0 0

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let rec loop i j k =
    if i >= na || j >= nb then k
    else if a.(i) = b.(j) then begin
      out.(k) <- a.(i);
      loop (i + 1) (j + 1) (k + 1)
    end
    else if a.(i) < b.(j) then loop (i + 1) j k
    else loop i (j + 1) k
  in
  let k = loop 0 0 0 in
  Array.sub out 0 k

let union a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let rec loop i j k =
    if i >= na && j >= nb then k
    else if j >= nb || (i < na && a.(i) < b.(j)) then begin
      out.(k) <- a.(i);
      loop (i + 1) j (k + 1)
    end
    else if i >= na || a.(i) > b.(j) then begin
      out.(k) <- b.(j);
      loop i (j + 1) (k + 1)
    end
    else begin
      out.(k) <- a.(i);
      loop (i + 1) (j + 1) (k + 1)
    end
  in
  let k = loop 0 0 0 in
  Array.sub out 0 k

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let rec loop i j k =
    if i >= na then k
    else if j >= nb || a.(i) < b.(j) then begin
      out.(k) <- a.(i);
      loop (i + 1) j (k + 1)
    end
    else if a.(i) = b.(j) then loop (i + 1) (j + 1) k
    else loop i (j + 1) k
  in
  let k = loop 0 0 0 in
  Array.sub out 0 k

let inter_many = function
  | [] -> invalid_arg "Sorted_ints.inter_many: empty list"
  | sets ->
      let sorted =
        List.sort (fun a b -> Int.compare (Array.length a) (Array.length b)) sets
      in
      (match sorted with
      | [] -> assert false
      | first :: rest -> List.fold_left inter first rest)

let equal a b =
  Array.length a = Array.length b
  &&
  let rec loop i = i >= Array.length a || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0
