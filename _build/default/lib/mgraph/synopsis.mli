(** Signature synopses (paper Section 4.2, Table 3).

    A synopsis condenses a vertex signature into 8 integer features —
    four per direction:

    - [f1] maximum cardinality of a multi-edge type set;
    - [f2] number of distinct edge types appearing on that side;
    - [f3] −(minimum edge type index) — negated so that every feature
      obeys the same [query ≤ data] containment inequality (Lemma 1);
    - [f4] maximum edge type index.

    Sides with no edges contribute [0] in all four fields. A data vertex
    [v] can match a query vertex [u] only if
    [∀i. f_i(u) ≤ f_i(v)] — rectangle containment in 8-dim space. *)

type t = int array
(** Length-{!dims} feature vector, layout
    [[f1+; f2+; f3+; f4+; f1−; f2−; f3−; f4−]] where '+' is incoming. *)

val dims : int
(** Number of features (8). *)

val f3_empty : int
(** Sentinel stored in [f3] for a side with no edges. The paper
    zero-fills empty sides, which is unsound for the negated-minimum
    feature (an empty {e query} side would prune data vertices whose
    minimum type index exceeds 0, breaking Lemma 1); the sentinel is
    below every legal [−min] value, so an empty query side never
    prunes. *)

val of_signature : Signature.t -> t

val of_vertex : Multigraph.t -> Multigraph.vertex -> t

val dominates : data:t -> query:t -> bool
(** [dominates ~data ~query] — may a vertex with synopsis [data] match a
    query vertex with synopsis [query]? (i.e. [∀i. query.(i) ≤ data.(i)]) *)

val pp : Format.formatter -> t -> unit
