type t = { incoming : int array list; outgoing : int array list }

let empty = { incoming = []; outgoing = [] }

let of_vertex g v =
  let collect dir =
    Array.fold_right
      (fun (_, tys) acc -> tys :: acc)
      (Multigraph.adjacency g dir v)
      []
  in
  { incoming = collect Multigraph.In; outgoing = collect Multigraph.Out }

let make ~incoming ~outgoing =
  let norm = List.map (fun a -> Sorted_ints.of_list (Array.to_list a)) in
  { incoming = norm incoming; outgoing = norm outgoing }

let side s = function
  | Multigraph.In -> s.incoming
  | Multigraph.Out -> s.outgoing

let pp_side ppf (label, sets) =
  Format.fprintf ppf "%s{" label;
  List.iteri
    (fun i tys ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map string_of_int (Array.to_list tys))))
    sets;
  Format.fprintf ppf "}"

let pp ppf s =
  Format.fprintf ppf "%a %a" pp_side ("+", s.incoming) pp_side ("-", s.outgoing)
