(** Bidirectional string↔id dictionaries.

    The paper (Table 2) keeps three dictionaries — vertices, edge types
    and vertex attributes — each mapping an RDF entity (the [key]) to a
    dense integer identifier (the [value]). This module provides the
    shared implementation: interning assigns consecutive ids starting
    from 0, and the inverse mapping [M⁻¹] is O(1). *)

type t

val create : ?initial_capacity:int -> unit -> t

val intern : t -> string -> int
(** [intern d s] is the id of [s], assigning the next fresh id when [s]
    has not been seen before. *)

val find_opt : t -> string -> int option
(** [find_opt d s] is [Some id] without interning, [None] if unknown. *)

val value : t -> int -> string
(** [value d id] is the string interned with [id] — the inverse mapping.
    @raise Invalid_argument when [id] was never assigned. *)

val size : t -> int
(** Number of distinct interned strings; ids are [0 .. size - 1]. *)

val mem : t -> string -> bool

val iter : (string -> int -> unit) -> t -> unit
(** Iterate over all bindings in id order. *)

val to_list : t -> (string * int) list
(** All bindings in id order. *)
