type t = {
  ids : (string, int) Hashtbl.t;
  mutable values : string array;  (* id -> string, grown geometrically *)
  mutable size : int;
}

let create ?(initial_capacity = 64) () =
  {
    ids = Hashtbl.create initial_capacity;
    values = Array.make (max 1 initial_capacity) "";
    size = 0;
  }

let grow d =
  let values = Array.make (2 * Array.length d.values) "" in
  Array.blit d.values 0 values 0 d.size;
  d.values <- values

let intern d s =
  match Hashtbl.find_opt d.ids s with
  | Some id -> id
  | None ->
      let id = d.size in
      if id = Array.length d.values then grow d;
      d.values.(id) <- s;
      Hashtbl.add d.ids s id;
      d.size <- id + 1;
      id

let find_opt d s = Hashtbl.find_opt d.ids s

let value d id =
  if id < 0 || id >= d.size then
    invalid_arg (Printf.sprintf "Dict.value: unknown id %d (size %d)" id d.size)
  else d.values.(id)

let size d = d.size
let mem d s = Hashtbl.mem d.ids s

let iter f d =
  for id = 0 to d.size - 1 do
    f d.values.(id) id
  done

let to_list d =
  List.init d.size (fun id -> (d.values.(id), id))
