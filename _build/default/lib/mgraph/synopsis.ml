type t = int array

let dims = 8
let f3_empty = min_int / 4

(* f1..f4 of one side of a signature. The paper zero-fills all four
   features of an empty side, but that is unsound for [f3] (the negated
   minimum type index): a query side with no edges would then prune any
   data vertex whose minimum type index exceeds 0, violating Lemma 1.
   We use a low sentinel instead so an empty query side never prunes. *)
let side_features sets =
  match sets with
  | [] -> (0, 0, f3_empty, 0)
  | _ ->
      let max_card = List.fold_left (fun m s -> max m (Array.length s)) 0 sets in
      let all_types = List.fold_left Sorted_ints.union [||] sets in
      let distinct = Array.length all_types in
      if distinct = 0 then (max_card, 0, f3_empty, 0)
      else
        let min_ty = all_types.(0) and max_ty = all_types.(distinct - 1) in
        (max_card, distinct, -min_ty, max_ty)

let of_signature (s : Signature.t) =
  let f1p, f2p, f3p, f4p = side_features s.incoming in
  let f1n, f2n, f3n, f4n = side_features s.outgoing in
  [| f1p; f2p; f3p; f4p; f1n; f2n; f3n; f4n |]

let of_vertex g v = of_signature (Signature.of_vertex g v)

let dominates ~data ~query =
  let rec loop i = i >= dims || (query.(i) <= data.(i) && loop (i + 1)) in
  loop 0

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat " " (List.map string_of_int (Array.to_list t)))
