exception Error of { line : int; col : int; message : string }

type state = {
  mutable tokens : Lexer.located list;
  mutable namespaces : Rdf.Namespace.t;
}

let current st =
  match st.tokens with
  | [] -> { Lexer.token = Lexer.Eof; line = 0; col = 0 }
  | t :: _ -> t

let fail st message =
  let { Lexer.line; col; _ } = current st in
  raise (Error { line; col; message })

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let eat st expected =
  let t = current st in
  if t.token = expected then advance st
  else
    fail st
      (Format.asprintf "expected %a, found %a" Lexer.pp_token expected
         Lexer.pp_token t.token)

let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
let xsd_integer = "http://www.w3.org/2001/XMLSchema#integer"
let xsd_decimal = "http://www.w3.org/2001/XMLSchema#decimal"

let expand st prefix local =
  match Rdf.Namespace.expand st.namespaces (prefix ^ ":" ^ local) with
  | Some iri -> iri
  | None -> fail st (Printf.sprintf "unbound prefix %S" prefix)

(* Literal = string with optional @lang or ^^datatype, or a number. *)
let parse_literal st =
  match (current st).token with
  | Lexer.String_lit value -> (
      advance st;
      match (current st).token with
      | Lexer.Lang_tag lang ->
          advance st;
          { Rdf.Term.value; datatype = None; lang = Some lang }
      | Lexer.Datatype_marker -> (
          advance st;
          match (current st).token with
          | Lexer.Iri_ref dt ->
              advance st;
              { Rdf.Term.value; datatype = Some dt; lang = None }
          | Lexer.Pname (p, l) ->
              advance st;
              { Rdf.Term.value; datatype = Some (expand st p l); lang = None }
          | _ -> fail st "expected datatype IRI after ^^")
      | _ -> { Rdf.Term.value; datatype = None; lang = None })
  | Lexer.Integer text ->
      advance st;
      { Rdf.Term.value = text; datatype = Some xsd_integer; lang = None }
  | Lexer.Decimal text ->
      advance st;
      { Rdf.Term.value = text; datatype = Some xsd_decimal; lang = None }
  | _ -> fail st "expected literal"

let parse_term st ~allow_literal ~allow_a =
  match (current st).token with
  | Lexer.Var v ->
      advance st;
      Ast.Var v
  | Lexer.Iri_ref iri ->
      advance st;
      Ast.Iri iri
  | Lexer.Pname (p, l) ->
      advance st;
      Ast.Iri (expand st p l)
  | Lexer.KW_a when allow_a ->
      advance st;
      Ast.Iri rdf_type
  | Lexer.String_lit _ | Lexer.Integer _ | Lexer.Decimal _ when allow_literal ->
      Ast.Lit (parse_literal st)
  | t ->
      fail st (Format.asprintf "unexpected %a in triple pattern" Lexer.pp_token t)

(* subject, then one or more [verb objects] groups separated by ';'. *)
let parse_block st =
  let subject = parse_term st ~allow_literal:false ~allow_a:false in
  let patterns = ref [] in
  let rec parse_props () =
    let predicate = parse_term st ~allow_literal:false ~allow_a:true in
    let rec parse_objects () =
      let obj = parse_term st ~allow_literal:true ~allow_a:false in
      patterns := { Ast.subject; predicate; obj } :: !patterns;
      if (current st).token = Lexer.Comma then begin
        advance st;
        parse_objects ()
      end
    in
    parse_objects ();
    if (current st).token = Lexer.Semicolon then begin
      advance st;
      (* A dangling ';' before '}' or '.' is tolerated (common SPARQL). *)
      match (current st).token with
      | Lexer.Rbrace | Lexer.Dot -> ()
      | _ -> parse_props ()
    end
  in
  parse_props ();
  List.rev !patterns

let parse_where st =
  eat st Lexer.Lbrace;
  let patterns = ref [] in
  let rec loop () =
    match (current st).token with
    | Lexer.Rbrace -> advance st
    | _ ->
        patterns := !patterns @ parse_block st;
        (match (current st).token with
        | Lexer.Dot -> advance st
        | Lexer.Rbrace -> ()
        | _ -> fail st "expected '.' or '}' after triple pattern");
        loop ()
  in
  loop ();
  !patterns

(* ORDER BY key+ / LIMIT n / OFFSET n, in any LIMIT/OFFSET order. *)
let parse_solution_modifiers st =
  let order_by =
    if (current st).token = Lexer.KW_order then begin
      advance st;
      eat st Lexer.KW_by;
      let rec keys acc =
        match (current st).token with
        | Lexer.Var v ->
            advance st;
            keys ((v, Ast.Asc) :: acc)
        | Lexer.KW_asc | Lexer.KW_desc ->
            let dir =
              if (current st).token = Lexer.KW_asc then Ast.Asc else Ast.Desc
            in
            advance st;
            eat st Lexer.Lparen;
            (match (current st).token with
            | Lexer.Var v ->
                advance st;
                eat st Lexer.Rparen;
                keys ((v, dir) :: acc)
            | _ -> fail st "expected variable in ASC()/DESC()")
        | _ -> List.rev acc
      in
      let keys = keys [] in
      if keys = [] then fail st "expected sort keys after ORDER BY" else keys
    end
    else []
  in
  let int_after kw =
    advance st;
    match (current st).token with
    | Lexer.Integer text ->
        advance st;
        int_of_string text
    | _ -> fail st (Printf.sprintf "expected integer after %s" kw)
  in
  let limit = ref None and offset = ref None in
  let rec modifiers () =
    match (current st).token with
    | Lexer.KW_limit when !limit = None ->
        limit := Some (int_after "LIMIT");
        modifiers ()
    | Lexer.KW_offset when !offset = None ->
        offset := Some (int_after "OFFSET");
        modifiers ()
    | _ -> ()
  in
  modifiers ();
  (order_by, !limit, !offset)

let parse_query st =
  (* Prefix declarations. *)
  let rec prefixes () =
    if (current st).token = Lexer.KW_prefix then begin
      advance st;
      match (current st).token with
      | Lexer.Pname (p, "") -> (
          advance st;
          match (current st).token with
          | Lexer.Iri_ref iri ->
              advance st;
              st.namespaces <- Rdf.Namespace.add st.namespaces ~prefix:p ~iri;
              prefixes ()
          | _ -> fail st "expected <iri> in PREFIX declaration")
      | _ -> fail st "expected prefix name in PREFIX declaration"
    end
  in
  prefixes ();
  eat st Lexer.KW_select;
  let distinct =
    if (current st).token = Lexer.KW_distinct then begin
      advance st;
      true
    end
    else false
  in
  let select =
    match (current st).token with
    | Lexer.Star ->
        advance st;
        Ast.Select_all
    | Lexer.Var _ ->
        let rec vars acc =
          match (current st).token with
          | Lexer.Var v ->
              advance st;
              vars (v :: acc)
          | _ -> List.rev acc
        in
        Ast.Select_vars (vars [])
    | _ -> fail st "expected '*' or variables after SELECT"
  in
  if (current st).token = Lexer.KW_where then advance st;
  let where = parse_where st in
  let order_by, limit, offset = parse_solution_modifiers st in
  (match (current st).token with
  | Lexer.Eof -> ()
  | t -> fail st (Format.asprintf "trailing %a after query" Lexer.pp_token t));
  { Ast.select; distinct; where; order_by; limit; offset }

(* ASK WHERE { ... } — evaluated as SELECT * with LIMIT 1 by callers. *)
let parse_ask_query st =
  eat st Lexer.KW_ask;
  if (current st).token = Lexer.KW_where then advance st;
  let where = parse_where st in
  (match (current st).token with
  | Lexer.Eof -> ()
  | t -> fail st (Format.asprintf "trailing %a after ASK query" Lexer.pp_token t));
  Ast.make Ast.Select_all where

(* CONSTRUCT { template } WHERE { ... } modifiers — the template reuses
   the triples-block grammar. *)
let parse_construct_query st =
  eat st Lexer.KW_construct;
  let template = parse_where st in
  if (current st).token = Lexer.KW_where then advance st
  else fail st "expected WHERE after the CONSTRUCT template";
  let where = parse_where st in
  let order_by, limit, offset = parse_solution_modifiers st in
  (match (current st).token with
  | Lexer.Eof -> ()
  | t -> fail st (Format.asprintf "trailing %a after query" Lexer.pp_token t));
  (template, Ast.make ~order_by ?limit ?offset Ast.Select_all where)

let parse ?(namespaces = Rdf.Namespace.common) src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Error { line; col; message } -> raise (Error { line; col; message })
  in
  parse_query { tokens; namespaces }

let parse_result ?namespaces src =
  match parse ?namespaces src with
  | q -> Ok q
  | exception Error { line; col; message } ->
      Result.Error (Printf.sprintf "line %d, col %d: %s" line col message)

(* ------------------------------------------------------------------ *)
(* Extended algebra: UNION / OPTIONAL / FILTER                          *)
(* ------------------------------------------------------------------ *)

let const_of_literal lit = Algebra.E_const (Rdf.Term.Literal lit)

(* expr := or; or := and (|| and)*; and := rel (&& rel)*;
   rel := unary (cmp unary)?; unary := '!' unary | primary *)
let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if (current st).token = Lexer.Op_or then begin
    advance st;
    Algebra.E_or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_rel st in
  if (current st).token = Lexer.Op_and then begin
    advance st;
    Algebra.E_and (left, parse_and st)
  end
  else left

and parse_rel st =
  let left = parse_unary st in
  let binop op =
    advance st;
    op left (parse_unary st)
  in
  match (current st).token with
  | Lexer.Op_eq -> binop (fun a b -> Algebra.E_eq (a, b))
  | Lexer.Op_neq -> binop (fun a b -> Algebra.E_neq (a, b))
  | Lexer.Op_lt -> binop (fun a b -> Algebra.E_lt (a, b))
  | Lexer.Op_le -> binop (fun a b -> Algebra.E_le (a, b))
  | Lexer.Op_gt -> binop (fun a b -> Algebra.E_gt (a, b))
  | Lexer.Op_ge -> binop (fun a b -> Algebra.E_ge (a, b))
  | _ -> left

and parse_unary st =
  match (current st).token with
  | Lexer.Op_not ->
      advance st;
      Algebra.E_not (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match (current st).token with
  | Lexer.Lparen ->
      advance st;
      let e = parse_expr st in
      eat st Lexer.Rparen;
      e
  | Lexer.Var v ->
      advance st;
      Algebra.E_var v
  | Lexer.Iri_ref iri ->
      advance st;
      Algebra.E_const (Rdf.Term.iri iri)
  | Lexer.Pname (p, l) ->
      advance st;
      Algebra.E_const (Rdf.Term.iri (expand st p l))
  | Lexer.String_lit _ | Lexer.Integer _ | Lexer.Decimal _ ->
      const_of_literal (parse_literal st)
  | Lexer.KW_bound -> (
      advance st;
      eat st Lexer.Lparen;
      match (current st).token with
      | Lexer.Var v ->
          advance st;
          eat st Lexer.Rparen;
          Algebra.E_bound v
      | _ -> fail st "expected variable in BOUND(...)")
  | Lexer.KW_regex -> (
      advance st;
      eat st Lexer.Lparen;
      let value = parse_expr st in
      eat st Lexer.Comma;
      match (current st).token with
      | Lexer.String_lit pat ->
          advance st;
          eat st Lexer.Rparen;
          Algebra.E_regex (value, pat)
      | _ -> fail st "expected pattern string in REGEX(...)")
  | t -> fail st (Format.asprintf "unexpected %a in expression" Lexer.pp_token t)

(* group := '{' item* '}' where items join left to right; FILTERs apply
   to the whole group (SPARQL group scoping). *)
let rec parse_group st : Algebra.pattern =
  eat st Lexer.Lbrace;
  let join acc p =
    match acc with
    | None -> Some p
    | Some a -> Some (Algebra.Join (a, p))
  in
  let acc = ref None in
  let triples = ref [] in
  let filters = ref [] in
  let flush_triples () =
    if !triples <> [] then begin
      acc := join !acc (Algebra.Bgp (List.rev !triples));
      triples := []
    end
  in
  let rec loop () =
    match (current st).token with
    | Lexer.Rbrace -> advance st
    | Lexer.Lbrace ->
        flush_triples ();
        let sub = parse_union_chain st in
        acc := join !acc sub;
        skip_dot st;
        loop ()
    | Lexer.KW_optional ->
        advance st;
        flush_triples ();
        let right = parse_group st in
        let left = Option.value ~default:(Algebra.Bgp []) !acc in
        acc := Some (Algebra.Optional (left, right));
        skip_dot st;
        loop ()
    | Lexer.KW_filter ->
        advance st;
        let e =
          match (current st).token with
          | Lexer.Lparen ->
              advance st;
              let e = parse_expr st in
              eat st Lexer.Rparen;
              e
          | Lexer.KW_bound | Lexer.KW_regex -> parse_expr st
          | _ -> fail st "expected ( or a builtin call after FILTER"
        in
        filters := e :: !filters;
        skip_dot st;
        loop ()
    | _ ->
        triples := List.rev_append (parse_block st) !triples;
        (match (current st).token with
        | Lexer.Dot -> advance st
        | Lexer.Rbrace | Lexer.Lbrace | Lexer.KW_optional | Lexer.KW_filter -> ()
        | _ -> fail st "expected '.', '}', OPTIONAL, FILTER or a subgroup");
        loop ()
  in
  loop ();
  flush_triples ();
  let body = Option.value ~default:(Algebra.Bgp []) !acc in
  List.fold_left (fun p e -> Algebra.Filter (e, p)) body !filters

and skip_dot st = if (current st).token = Lexer.Dot then advance st

and parse_union_chain st =
  let first = parse_group st in
  if (current st).token = Lexer.KW_union then begin
    advance st;
    Algebra.Union (first, parse_union_chain st)
  end
  else first

let parse_algebra_query st =
  let rec prefixes () =
    if (current st).token = Lexer.KW_prefix then begin
      advance st;
      match (current st).token with
      | Lexer.Pname (p, "") -> (
          advance st;
          match (current st).token with
          | Lexer.Iri_ref iri ->
              advance st;
              st.namespaces <- Rdf.Namespace.add st.namespaces ~prefix:p ~iri;
              prefixes ()
          | _ -> fail st "expected <iri> in PREFIX declaration")
      | _ -> fail st "expected prefix name in PREFIX declaration"
    end
  in
  prefixes ();
  eat st Lexer.KW_select;
  let distinct =
    if (current st).token = Lexer.KW_distinct then begin
      advance st;
      true
    end
    else false
  in
  let select =
    match (current st).token with
    | Lexer.Star ->
        advance st;
        Ast.Select_all
    | Lexer.Var _ ->
        let rec vars acc =
          match (current st).token with
          | Lexer.Var v ->
              advance st;
              vars (v :: acc)
          | _ -> List.rev acc
        in
        Ast.Select_vars (vars [])
    | _ -> fail st "expected '*' or variables after SELECT"
  in
  if (current st).token = Lexer.KW_where then advance st;
  let pattern = parse_union_chain st in
  let order_by, limit, offset = parse_solution_modifiers st in
  (match (current st).token with
  | Lexer.Eof -> ()
  | t -> fail st (Format.asprintf "trailing %a after query" Lexer.pp_token t));
  { Algebra.select; distinct; pattern; order_by; limit; offset }

let parse_algebra ?(namespaces = Rdf.Namespace.common) src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Error { line; col; message } -> raise (Error { line; col; message })
  in
  parse_algebra_query { tokens; namespaces }

let parse_algebra_result ?namespaces src =
  match parse_algebra ?namespaces src with
  | q -> Ok q
  | exception Error { line; col; message } ->
      Result.Error (Printf.sprintf "line %d, col %d: %s" line col message)


type any_query =
  | Q_select of Ast.t
  | Q_ask of Ast.t
  | Q_construct of Ast.triple_pattern list * Ast.t

let parse_any ?(namespaces = Rdf.Namespace.common) src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Error { line; col; message } -> raise (Error { line; col; message })
  in
  let st = { tokens; namespaces } in
  (* Skip PREFIX declarations to find the query form keyword. *)
  let rec prefixes () =
    if (current st).token = Lexer.KW_prefix then begin
      advance st;
      match (current st).token with
      | Lexer.Pname (p, "") -> (
          advance st;
          match (current st).token with
          | Lexer.Iri_ref iri ->
              advance st;
              st.namespaces <- Rdf.Namespace.add st.namespaces ~prefix:p ~iri;
              prefixes ()
          | _ -> fail st "expected <iri> in PREFIX declaration")
      | _ -> fail st "expected prefix name in PREFIX declaration"
    end
  in
  prefixes ();
  match (current st).token with
  | Lexer.KW_ask -> Q_ask (parse_ask_query st)
  | Lexer.KW_construct ->
      let template, where = parse_construct_query st in
      Q_construct (template, where)
  | _ -> Q_select (parse_query st)
