lib/sparql/lexer.mli: Format
