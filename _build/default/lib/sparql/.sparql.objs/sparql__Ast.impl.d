lib/sparql/ast.ml: Format Hashtbl List Option Printf Rdf String
