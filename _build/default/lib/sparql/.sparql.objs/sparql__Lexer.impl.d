lib/sparql/lexer.ml: Buffer Format List Printf String
