lib/sparql/algebra.ml: Ast Format Hashtbl List Printf Rdf String
