lib/sparql/ast.mli: Format Rdf
