lib/sparql/parser.mli: Algebra Ast Rdf
