lib/sparql/parser.ml: Algebra Ast Format Lexer List Option Printf Rdf Result
