lib/sparql/algebra.mli: Ast Format Rdf
