(** Tokenizer for the SPARQL fragment. *)

type token =
  | KW_prefix
  | KW_select
  | KW_distinct
  | KW_where
  | KW_limit
  | KW_a  (** the [a] abbreviation for [rdf:type] *)
  | KW_filter
  | KW_union
  | KW_optional
  | KW_bound
  | KW_regex
  | KW_order
  | KW_by
  | KW_asc
  | KW_desc
  | KW_offset
  | KW_ask
  | KW_construct
  | Var of string
  | Iri_ref of string  (** contents of [<...>] *)
  | Pname of string * string  (** prefix, local part (either may be "") *)
  | String_lit of string  (** unescaped contents *)
  | Integer of string
  | Decimal of string
  | Lang_tag of string  (** [@en] *)
  | Datatype_marker  (** [^^] *)
  | Lbrace
  | Rbrace
  | Dot
  | Semicolon
  | Comma
  | Star
  | Lparen
  | Rparen
  | Op_eq
  | Op_neq
  | Op_lt  (** ["< "] — a [<] not opening an IRI *)
  | Op_le
  | Op_gt
  | Op_ge
  | Op_and
  | Op_or
  | Op_not
  | Eof

type located = { token : token; line : int; col : int }

exception Error of { line : int; col : int; message : string }

val tokenize : string -> located list
(** @raise Error on unrecognized input. Comments ([# ... end of line])
    and whitespace are skipped. *)

val pp_token : Format.formatter -> token -> unit
