type expr =
  | E_var of string
  | E_const of Rdf.Term.t
  | E_eq of expr * expr
  | E_neq of expr * expr
  | E_lt of expr * expr
  | E_le of expr * expr
  | E_gt of expr * expr
  | E_ge of expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_bound of string
  | E_regex of expr * string

type pattern =
  | Bgp of Ast.triple_pattern list
  | Join of pattern * pattern
  | Union of pattern * pattern
  | Optional of pattern * pattern
  | Filter of expr * pattern

type t = {
  select : Ast.selection;
  distinct : bool;
  pattern : pattern;
  order_by : (string * Ast.sort_direction) list;
  limit : int option;
  offset : int option;
}

let variables t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      out := v :: !out
    end
  in
  let visit_term = function
    | Ast.Var v -> add v
    | Ast.Iri _ | Ast.Lit _ -> ()
  in
  let rec visit_expr = function
    | E_var v | E_bound v -> add v
    | E_const _ -> ()
    | E_eq (a, b) | E_neq (a, b) | E_lt (a, b) | E_le (a, b) | E_gt (a, b)
    | E_ge (a, b) | E_and (a, b) | E_or (a, b) ->
        visit_expr a;
        visit_expr b
    | E_not a | E_regex (a, _) -> visit_expr a
  in
  let rec visit = function
    | Bgp patterns ->
        List.iter
          (fun { Ast.subject; predicate; obj } ->
            visit_term subject;
            visit_term predicate;
            visit_term obj)
          patterns
    | Join (a, b) | Union (a, b) | Optional (a, b) ->
        visit a;
        visit b
    | Filter (e, p) ->
        visit p;
        visit_expr e
  in
  visit t.pattern;
  List.rev !out

let selected_variables t =
  match t.select with Ast.Select_all -> variables t | Ast.Select_vars vs -> vs

let of_basic (q : Ast.t) =
  {
    select = q.select;
    distinct = q.distinct;
    pattern = Bgp q.where;
    order_by = q.order_by;
    limit = q.limit;
    offset = q.offset;
  }

let rec pp_expr ppf = function
  | E_var v -> Format.fprintf ppf "?%s" v
  | E_const term -> Rdf.Term.pp ppf term
  | E_eq (a, b) -> Format.fprintf ppf "(%a = %a)" pp_expr a pp_expr b
  | E_neq (a, b) -> Format.fprintf ppf "(%a != %a)" pp_expr a pp_expr b
  | E_lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp_expr a pp_expr b
  | E_le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp_expr a pp_expr b
  | E_gt (a, b) -> Format.fprintf ppf "(%a > %a)" pp_expr a pp_expr b
  | E_ge (a, b) -> Format.fprintf ppf "(%a >= %a)" pp_expr a pp_expr b
  | E_and (a, b) -> Format.fprintf ppf "(%a && %a)" pp_expr a pp_expr b
  | E_or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_expr a pp_expr b
  | E_not a -> Format.fprintf ppf "(!%a)" pp_expr a
  | E_bound v -> Format.fprintf ppf "BOUND(?%s)" v
  | E_regex (a, pat) -> Format.fprintf ppf "REGEX(%a, %S)" pp_expr a pat

let rec pp_pattern ppf = function
  | Bgp patterns ->
      Format.fprintf ppf "{@[<v 1>";
      List.iter (fun p -> Format.fprintf ppf "@,%a" Ast.pp_pattern p) patterns;
      Format.fprintf ppf "@]@,}"
  | Join (a, b) -> Format.fprintf ppf "%a %a" pp_pattern a pp_pattern b
  | Union (a, b) -> Format.fprintf ppf "{ %a UNION %a }" pp_pattern a pp_pattern b
  | Optional (a, b) ->
      Format.fprintf ppf "%a OPTIONAL %a" pp_pattern a pp_pattern b
  | Filter (e, p) -> Format.fprintf ppf "%a FILTER %a" pp_pattern p pp_expr e

let pp ppf t =
  Format.fprintf ppf "@[<v>SELECT %s%s WHERE %a"
    (if t.distinct then "DISTINCT " else "")
    (match t.select with
    | Ast.Select_all -> "*"
    | Ast.Select_vars vs -> String.concat " " (List.map (fun v -> "?" ^ v) vs))
    pp_pattern t.pattern;
  (match t.order_by with
  | [] -> ()
  | keys ->
      Format.fprintf ppf "@,ORDER BY %s"
        (String.concat " "
           (List.map
              (fun (v, dir) ->
                match dir with
                | Ast.Asc -> "?" ^ v
                | Ast.Desc -> Printf.sprintf "DESC(?%s)" v)
              keys)));
  (match t.limit with None -> () | Some n -> Format.fprintf ppf "@,LIMIT %d" n);
  (match t.offset with None -> () | Some n -> Format.fprintf ppf "@,OFFSET %d" n);
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
