(** Extended SPARQL algebra: [UNION], [OPTIONAL] and [FILTER] on top of
    basic graph patterns — the "other SPARQL operations" the paper
    defers to future work (Section 8).

    Patterns form the usual algebra tree; expressions cover the
    comparison/boolean core plus [BOUND], [REGEX] (OCaml [Str] syntax)
    and numeric-aware comparisons. *)

type expr =
  | E_var of string
  | E_const of Rdf.Term.t
  | E_eq of expr * expr
  | E_neq of expr * expr
  | E_lt of expr * expr
  | E_le of expr * expr
  | E_gt of expr * expr
  | E_ge of expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_bound of string
  | E_regex of expr * string  (** value, Str-syntax pattern *)

type pattern =
  | Bgp of Ast.triple_pattern list
  | Join of pattern * pattern
  | Union of pattern * pattern
  | Optional of pattern * pattern  (** left OPTIONAL { right } *)
  | Filter of expr * pattern

type t = {
  select : Ast.selection;
  distinct : bool;
  pattern : pattern;
  order_by : (string * Ast.sort_direction) list;
  limit : int option;
  offset : int option;
}

val variables : t -> string list
(** Variables of the whole pattern tree, in first-occurrence order. *)

val selected_variables : t -> string list

val of_basic : Ast.t -> t
(** Lift a basic query into the algebra ([Bgp] of its WHERE clause). *)

val pp : Format.formatter -> t -> unit
val pp_expr : Format.formatter -> expr -> unit
val to_string : t -> string
