(** Recursive-descent parser for the SPARQL fragment.

    Grammar:
    {v
    query    ::= prefix* SELECT DISTINCT? ('*' | var+) WHERE? '{' triples '}' (LIMIT int)?
    prefix   ::= PREFIX pname: <iri>
    triples  ::= block ('.' block?)*
    block    ::= subject props
    props    ::= verb objects (';' verb objects)*
    objects  ::= object (',' object)*
    v}
    Predicate position accepts [a] for [rdf:type]. Prefixed names are
    expanded against the declared prefixes plus {!Rdf.Namespace.common}
    defaults. *)

exception Error of { line : int; col : int; message : string }

val parse : ?namespaces:Rdf.Namespace.t -> string -> Ast.t
(** @raise Error on syntax errors or unbound prefixes. *)

val parse_result : ?namespaces:Rdf.Namespace.t -> string -> (Ast.t, string) result

val parse_algebra : ?namespaces:Rdf.Namespace.t -> string -> Algebra.t
(** Parse the extended fragment: groups with [UNION], [OPTIONAL] and
    [FILTER] (comparisons, [&&]/[||]/[!], [BOUND], [REGEX]). FILTERs
    scope over their enclosing group, as in SPARQL.
    @raise Error on syntax errors or unbound prefixes. *)

val parse_algebra_result :
  ?namespaces:Rdf.Namespace.t -> string -> (Algebra.t, string) result

(** {1 Other query forms} *)

type any_query =
  | Q_select of Ast.t
  | Q_ask of Ast.t  (** the WHERE clause, as a [SELECT *] *)
  | Q_construct of Ast.triple_pattern list * Ast.t
      (** template, and the WHERE clause as a [SELECT *] *)

val parse_any : ?namespaces:Rdf.Namespace.t -> string -> any_query
(** Dispatch on the query form: SELECT, ASK or CONSTRUCT.
    @raise Error on syntax errors. *)
