type token =
  | KW_prefix
  | KW_select
  | KW_distinct
  | KW_where
  | KW_limit
  | KW_a
  | KW_filter
  | KW_union
  | KW_optional
  | KW_bound
  | KW_regex
  | KW_order
  | KW_by
  | KW_asc
  | KW_desc
  | KW_offset
  | KW_ask
  | KW_construct
  | Var of string
  | Iri_ref of string
  | Pname of string * string
  | String_lit of string
  | Integer of string
  | Decimal of string
  | Lang_tag of string
  | Datatype_marker
  | Lbrace
  | Rbrace
  | Dot
  | Semicolon
  | Comma
  | Star
  | Lparen
  | Rparen
  | Op_eq
  | Op_neq
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge
  | Op_and
  | Op_or
  | Op_not
  | Eof

type located = { token : token; line : int; col : int }

exception Error of { line : int; col : int; message : string }

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let error st message = raise (Error { line = st.line; col = st.col; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ws = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

(* Local names may contain dots but not end with one ("x:a." is name "a"
   followed by Dot); trim trailing dots back into the stream. *)
let read_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  let finish = ref st.pos in
  while !finish > start && st.src.[!finish - 1] = '.' do
    decr finish;
    st.pos <- st.pos - 1;
    st.col <- st.col - 1
  done;
  String.sub st.src start (!finish - start)

let read_quoted st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "dangling escape"
        | Some c ->
            advance st;
            (match c with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | c -> error st (Printf.sprintf "unknown escape \\%c" c));
            loop ())
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        loop ()
  in
  loop ();
  Buffer.contents buf

let keyword_of_name name =
  match String.uppercase_ascii name with
  | "PREFIX" -> Some KW_prefix
  | "SELECT" -> Some KW_select
  | "DISTINCT" -> Some KW_distinct
  | "WHERE" -> Some KW_where
  | "LIMIT" -> Some KW_limit
  | "FILTER" -> Some KW_filter
  | "UNION" -> Some KW_union
  | "OPTIONAL" -> Some KW_optional
  | "BOUND" -> Some KW_bound
  | "REGEX" -> Some KW_regex
  | "ORDER" -> Some KW_order
  | "BY" -> Some KW_by
  | "ASC" -> Some KW_asc
  | "DESC" -> Some KW_desc
  | "OFFSET" -> Some KW_offset
  | "ASK" -> Some KW_ask
  | "CONSTRUCT" -> Some KW_construct
  | _ -> if name = "a" then Some KW_a else None

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit ~line ~col token = tokens := { token; line; col } :: !tokens in
  let rec loop () =
    match peek st with
    | None -> ()
    | Some c when is_ws c ->
        advance st;
        loop ()
    | Some '#' ->
        while (match peek st with Some c -> c <> '\n' | None -> false) do
          advance st
        done;
        loop ()
    | Some c ->
        let line = st.line and col = st.col in
        (match c with
        | '{' ->
            advance st;
            emit ~line ~col Lbrace
        | '}' ->
            advance st;
            emit ~line ~col Rbrace
        | '.' ->
            advance st;
            emit ~line ~col Dot
        | ';' ->
            advance st;
            emit ~line ~col Semicolon
        | ',' ->
            advance st;
            emit ~line ~col Comma
        | '*' ->
            advance st;
            emit ~line ~col Star
        | '(' ->
            advance st;
            emit ~line ~col Lparen
        | ')' ->
            advance st;
            emit ~line ~col Rparen
        | '=' ->
            advance st;
            emit ~line ~col Op_eq
        | '!' ->
            advance st;
            if peek st = Some '=' then begin
              advance st;
              emit ~line ~col Op_neq
            end
            else emit ~line ~col Op_not
        | '&' ->
            advance st;
            if peek st = Some '&' then begin
              advance st;
              emit ~line ~col Op_and
            end
            else error st "expected &&"
        | '|' ->
            advance st;
            if peek st = Some '|' then begin
              advance st;
              emit ~line ~col Op_or
            end
            else error st "expected ||"
        | '>' ->
            advance st;
            if peek st = Some '=' then begin
              advance st;
              emit ~line ~col Op_ge
            end
            else emit ~line ~col Op_gt
        | '?' | '$' ->
            advance st;
            let name = read_name st in
            if name = "" then error st "empty variable name"
            else emit ~line ~col (Var name)
        | '<' ->
            (* "<" begins an IRI unless followed by '=', whitespace or
               another comparison context — then it is the less-than
               operator (inside FILTER expressions). *)
            advance st;
            (match peek st with
            | Some '=' ->
                advance st;
                emit ~line ~col Op_le
            | Some (' ' | '\t' | '\r' | '\n') | None -> emit ~line ~col Op_lt
            | Some _ ->
                let start = st.pos in
                while (match peek st with Some c -> c <> '>' | None -> false) do
                  advance st
                done;
                if peek st = None then error st "unterminated IRI"
                else begin
                  let iri = String.sub st.src start (st.pos - start) in
                  advance st;
                  emit ~line ~col (Iri_ref iri)
                end)
        | '"' ->
            let s = read_quoted st in
            emit ~line ~col (String_lit s)
        | '@' ->
            advance st;
            let name = read_name st in
            if name = "" then error st "empty language tag"
            else emit ~line ~col (Lang_tag name)
        | '^' ->
            advance st;
            if peek st = Some '^' then begin
              advance st;
              emit ~line ~col Datatype_marker
            end
            else error st "expected ^^"
        | c when is_digit c || (c = '-' && (match peek2 st with Some d -> is_digit d | None -> false)) ->
            let start = st.pos in
            if c = '-' then advance st;
            while (match peek st with Some d -> is_digit d | None -> false) do
              advance st
            done;
            let decimal =
              match (peek st, peek2 st) with
              | Some '.', Some d when is_digit d ->
                  advance st;
                  while (match peek st with Some d -> is_digit d | None -> false) do
                    advance st
                  done;
                  true
              | _ -> false
            in
            let text = String.sub st.src start (st.pos - start) in
            emit ~line ~col (if decimal then Decimal text else Integer text)
        | c when is_name_start c || c = ':' ->
            let name = if c = ':' then "" else read_name st in
            if peek st = Some ':' then begin
              advance st;
              let local =
                match peek st with
                | Some c when is_name_char c -> read_name st
                | _ -> ""
              in
              emit ~line ~col (Pname (name, local))
            end
            else begin
              match keyword_of_name name with
              | Some kw -> emit ~line ~col kw
              | None ->
                  error st (Printf.sprintf "unknown bare word %S" name)
            end
        | c -> error st (Printf.sprintf "unexpected character %c" c));
        loop ()
  in
  loop ();
  emit ~line:st.line ~col:st.col Eof;
  List.rev !tokens

let pp_token ppf = function
  | KW_prefix -> Format.pp_print_string ppf "PREFIX"
  | KW_select -> Format.pp_print_string ppf "SELECT"
  | KW_distinct -> Format.pp_print_string ppf "DISTINCT"
  | KW_where -> Format.pp_print_string ppf "WHERE"
  | KW_limit -> Format.pp_print_string ppf "LIMIT"
  | KW_a -> Format.pp_print_string ppf "a"
  | Var v -> Format.fprintf ppf "?%s" v
  | Iri_ref i -> Format.fprintf ppf "<%s>" i
  | Pname (p, l) -> Format.fprintf ppf "%s:%s" p l
  | String_lit s -> Format.fprintf ppf "%S" s
  | Integer s | Decimal s -> Format.pp_print_string ppf s
  | Lang_tag l -> Format.fprintf ppf "@%s" l
  | Datatype_marker -> Format.pp_print_string ppf "^^"
  | Lbrace -> Format.pp_print_string ppf "{"
  | Rbrace -> Format.pp_print_string ppf "}"
  | Dot -> Format.pp_print_string ppf "."
  | Semicolon -> Format.pp_print_string ppf ";"
  | Comma -> Format.pp_print_string ppf ","
  | Star -> Format.pp_print_string ppf "*"
  | Lparen -> Format.pp_print_string ppf "("
  | Rparen -> Format.pp_print_string ppf ")"
  | Op_eq -> Format.pp_print_string ppf "="
  | Op_neq -> Format.pp_print_string ppf "!="
  | Op_lt -> Format.pp_print_string ppf "<"
  | Op_le -> Format.pp_print_string ppf "<="
  | Op_gt -> Format.pp_print_string ppf ">"
  | Op_ge -> Format.pp_print_string ppf ">="
  | Op_and -> Format.pp_print_string ppf "&&"
  | Op_or -> Format.pp_print_string ppf "||"
  | Op_not -> Format.pp_print_string ppf "!"
  | KW_filter -> Format.pp_print_string ppf "FILTER"
  | KW_union -> Format.pp_print_string ppf "UNION"
  | KW_optional -> Format.pp_print_string ppf "OPTIONAL"
  | KW_bound -> Format.pp_print_string ppf "BOUND"
  | KW_regex -> Format.pp_print_string ppf "REGEX"
  | KW_order -> Format.pp_print_string ppf "ORDER"
  | KW_by -> Format.pp_print_string ppf "BY"
  | KW_asc -> Format.pp_print_string ppf "ASC"
  | KW_desc -> Format.pp_print_string ppf "DESC"
  | KW_offset -> Format.pp_print_string ppf "OFFSET"
  | KW_ask -> Format.pp_print_string ppf "ASK"
  | KW_construct -> Format.pp_print_string ppf "CONSTRUCT"
  | Eof -> Format.pp_print_string ppf "<eof>"
