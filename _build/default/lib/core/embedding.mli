(** Embedding generation — the paper's [GenEmb] step.

    A matcher solution binds core vertices to singletons and satellites
    to candidate sets; the embeddings it denotes are the Cartesian
    product of those sets (Lemma 2). Queries may further decompose into
    several connected components, whose solution sets also combine by
    Cartesian product, and open-object patterns (the literal extension)
    multiply each embedding by their binding lists.

    Everything here is lazy ({!Seq.t}): a query with a huge result set
    costs memory proportional to what the caller consumes. *)

type slots = {
  names : string array;
      (** slot index -> variable name: the query-graph variables first,
          then the open-object variables *)
  of_var : string -> int option;
}

val slots : Query_graph.t -> slots

val rows :
  db:Database.t ->
  q:Query_graph.t ->
  lits:Literal_bindings.t ->
  solutions:Matcher.solution list array ->
  Rdf.Term.t array Seq.t
(** Lazily enumerate full assignments, one term per slot. [solutions]
    holds, per query component, the solutions the matcher emitted; an
    empty component list yields no rows. Embeddings whose open-object
    patterns have no binding are dropped. *)

val count :
  q:Query_graph.t ->
  lits:Literal_bindings.t ->
  db:Database.t ->
  solutions:Matcher.solution list array ->
  int
(** Number of embeddings, computed by products without materializing
    rows (open-object binding lists still have to be sized). *)
