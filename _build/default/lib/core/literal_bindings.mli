(** Open-object bindings — the literal-variable extension.

    The paper's model folds literals into vertex attributes, so a
    variable can never bind to a literal. For patterns [?s <p> ?o] whose
    object variable joins with nothing else, this module enumerates the
    full SPARQL bindings of [?o] for a matched subject vertex: IRI/bnode
    out-neighbours through [p] {e plus} literals attached via [p]. *)

type t

val create : Database.t -> t

val bindings : t -> vertex:int -> pred:string -> Rdf.Term.t list
(** All terms [o] such that the triple
    [term_of_vertex vertex, pred, o] is in the data. *)
