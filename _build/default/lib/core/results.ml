(* JSON string escaping per RFC 8259. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_term = function
  | Rdf.Term.Iri iri -> Printf.sprintf {|{"type":"uri","value":"%s"}|} (json_escape iri)
  | Rdf.Term.Bnode b -> Printf.sprintf {|{"type":"bnode","value":"%s"}|} (json_escape b)
  | Rdf.Term.Literal { value; datatype; lang } ->
      let extra =
        match (datatype, lang) with
        | Some dt, _ -> Printf.sprintf {|,"datatype":"%s"|} (json_escape dt)
        | None, Some l -> Printf.sprintf {|,"xml:lang":"%s"|} (json_escape l)
        | None, None -> ""
      in
      Printf.sprintf {|{"type":"literal","value":"%s"%s}|} (json_escape value) extra

let to_json (a : Engine.answer) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf {|{"head":{"vars":[|};
  Buffer.add_string buf
    (String.concat ","
       (List.map (fun v -> Printf.sprintf {|"%s"|} (json_escape v)) a.variables));
  Buffer.add_string buf {|]},"results":{"bindings":[|};
  let first_row = ref true in
  List.iter
    (fun row ->
      if not !first_row then Buffer.add_char buf ',';
      first_row := false;
      Buffer.add_char buf '{';
      let first_cell = ref true in
      List.iter2
        (fun var cell ->
          match cell with
          | None -> () (* unbound: omitted *)
          | Some term ->
              if not !first_cell then Buffer.add_char buf ',';
              first_cell := false;
              Buffer.add_string buf
                (Printf.sprintf {|"%s":%s|} (json_escape var) (json_term term)))
        a.variables row;
      Buffer.add_char buf '}')
    a.rows;
  Buffer.add_string buf "]}}";
  Buffer.contents buf

let csv_field s =
  if String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s
  then begin
    let buf = Buffer.create (String.length s + 4) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv_term = function
  | Rdf.Term.Iri iri -> iri
  | Rdf.Term.Bnode b -> "_:" ^ b
  | Rdf.Term.Literal { value; _ } -> value

let to_csv (a : Engine.answer) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (List.map csv_field a.variables));
  Buffer.add_string buf "\r\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat ","
           (List.map
              (function None -> "" | Some t -> csv_field (csv_term t))
              row));
      Buffer.add_string buf "\r\n")
    a.rows;
  Buffer.contents buf

let to_tsv (a : Engine.answer) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat "\t" (List.map (fun v -> "?" ^ v) a.variables));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "\t"
           (List.map
              (function None -> "" | Some t -> Rdf.Term.to_string t)
              row));
      Buffer.add_char buf '\n')
    a.rows;
  Buffer.contents buf

let ask_json b =
  Printf.sprintf {|{"head":{},"boolean":%b}|} b
