(* Partial solution mappings: variable name -> term, unbound = absent. *)
type binding = (string * Rdf.Term.t) list

let compatible (a : binding) (b : binding) =
  List.for_all
    (fun (v, t) ->
      match List.assoc_opt v b with
      | None -> true
      | Some t' -> Rdf.Term.equal t t')
    a

let merge (a : binding) (b : binding) =
  List.fold_left
    (fun acc (v, t) -> if List.mem_assoc v acc then acc else (v, t) :: acc)
    a b

(* --- expression evaluation ------------------------------------------ *)

exception Type_error

let numeric_value lit =
  match float_of_string_opt lit.Rdf.Term.value with
  | Some f -> Some f
  | None -> None

let term_value (binding : binding) expr =
  match expr with
  | Sparql.Algebra.E_var v -> (
      match List.assoc_opt v binding with
      | Some t -> t
      | None -> raise Type_error)
  | Sparql.Algebra.E_const t -> t
  | _ -> raise Type_error (* non-value expression in value position *)

let rec eval_expr (binding : binding) (expr : Sparql.Algebra.expr) : bool =
  let value e =
    match e with
    | Sparql.Algebra.E_var _ | Sparql.Algebra.E_const _ -> term_value binding e
    | _ -> raise Type_error
  in
  (* Numeric when both sides parse as numbers; otherwise compare literal
     values lexicographically, other terms by canonical form. *)
  let compare_terms t1 t2 =
    match (t1, t2) with
    | Rdf.Term.Literal l1, Rdf.Term.Literal l2 -> (
        match (numeric_value l1, numeric_value l2) with
        | Some f1, Some f2 -> Float.compare f1 f2
        | _ -> String.compare l1.Rdf.Term.value l2.Rdf.Term.value)
    | _ -> String.compare (Rdf.Term.to_string t1) (Rdf.Term.to_string t2)
  in
  let equal_terms t1 t2 =
    match (t1, t2) with
    | Rdf.Term.Literal l1, Rdf.Term.Literal l2 -> (
        match (numeric_value l1, numeric_value l2) with
        | Some f1, Some f2 -> Float.equal f1 f2
        | _ -> Rdf.Term.equal t1 t2)
    | _ -> Rdf.Term.equal t1 t2
  in
  match expr with
  | Sparql.Algebra.E_eq (a, b) -> equal_terms (value a) (value b)
  | Sparql.Algebra.E_neq (a, b) -> not (equal_terms (value a) (value b))
  | Sparql.Algebra.E_lt (a, b) -> compare_terms (value a) (value b) < 0
  | Sparql.Algebra.E_le (a, b) -> compare_terms (value a) (value b) <= 0
  | Sparql.Algebra.E_gt (a, b) -> compare_terms (value a) (value b) > 0
  | Sparql.Algebra.E_ge (a, b) -> compare_terms (value a) (value b) >= 0
  | Sparql.Algebra.E_and (a, b) -> eval_expr binding a && eval_expr binding b
  | Sparql.Algebra.E_or (a, b) -> eval_expr binding a || eval_expr binding b
  | Sparql.Algebra.E_not a -> not (eval_expr binding a)
  | Sparql.Algebra.E_bound v -> List.mem_assoc v binding
  | Sparql.Algebra.E_regex (e, pattern) -> (
      let text =
        match value e with
        | Rdf.Term.Literal l -> l.Rdf.Term.value
        | Rdf.Term.Iri iri -> iri
        | Rdf.Term.Bnode b -> b
      in
      match Str.search_forward (Str.regexp pattern) text 0 with
      | _ -> true
      | exception Not_found -> false)
  | Sparql.Algebra.E_var _ | Sparql.Algebra.E_const _ -> (
      (* Effective boolean value of a bare term. *)
      match term_value binding expr with
      | Rdf.Term.Literal { value = "true"; _ } -> true
      | Rdf.Term.Literal { value = "false"; _ } -> false
      | Rdf.Term.Literal { value = v; _ } -> String.length v > 0
      | Rdf.Term.Iri _ | Rdf.Term.Bnode _ -> raise Type_error)

let eval_filter binding expr =
  match eval_expr binding expr with
  | b -> b
  | exception Type_error -> false (* SPARQL: errors eliminate the row *)

(* --- pattern evaluation ---------------------------------------------- *)

let eval_bgp engine deadline ?open_objects patterns : binding list =
  match patterns with
  | [] -> [ [] ] (* the empty group: one empty mapping *)
  | _ ->
      let ast = Sparql.Ast.make Sparql.Ast.Select_all patterns in
      let timeout =
        let r = Deadline.remaining deadline in
        if r = infinity then None else Some (Float.max r 0.0)
      in
      let answer = Engine.query ?timeout ?open_objects engine ast in
      let vars = answer.Engine.variables in
      List.map
        (fun row ->
          List.fold_left2
            (fun acc v cell ->
              match cell with Some t -> (v, t) :: acc | None -> acc)
            [] vars row)
        answer.Engine.rows

let rec eval engine deadline ?open_objects (p : Sparql.Algebra.pattern) :
    binding list =
  Deadline.check deadline;
  match p with
  | Sparql.Algebra.Bgp patterns -> eval_bgp engine deadline ?open_objects patterns
  | Sparql.Algebra.Join (a, b) ->
      let left = eval engine deadline ?open_objects a in
      let right = eval engine deadline ?open_objects b in
      List.concat_map
        (fun mu_a ->
          Deadline.check deadline;
          List.filter_map
            (fun mu_b ->
              if compatible mu_a mu_b then Some (merge mu_a mu_b) else None)
            right)
        left
  | Sparql.Algebra.Union (a, b) ->
      eval engine deadline ?open_objects a @ eval engine deadline ?open_objects b
  | Sparql.Algebra.Optional (a, b) ->
      let left = eval engine deadline ?open_objects a in
      let right = eval engine deadline ?open_objects b in
      List.concat_map
        (fun mu_a ->
          Deadline.check deadline;
          match
            List.filter_map
              (fun mu_b ->
                if compatible mu_a mu_b then Some (merge mu_a mu_b) else None)
              right
          with
          | [] -> [ mu_a ]
          | extended -> extended)
        left
  | Sparql.Algebra.Filter (e, inner) ->
      List.filter (fun mu -> eval_filter mu e) (eval engine deadline ?open_objects inner)

let query ?timeout ?limit ?open_objects engine (q : Sparql.Algebra.t) =
  let deadline =
    match timeout with None -> Deadline.never | Some s -> Deadline.after s
  in
  let bindings = eval engine deadline ?open_objects q.pattern in
  let selected = Sparql.Algebra.selected_variables q in
  let effective_limit =
    match (limit, q.limit) with
    | None, None -> None
    | Some l, None | None, Some l -> Some l
    | Some a, Some b -> Some (min a b)
  in
  let seen = Hashtbl.create 64 in
  let rows = ref [] in
  List.iter
    (fun mu ->
      let row = List.map (fun v -> List.assoc_opt v mu) selected in
      let fresh =
        if q.distinct then
          if Hashtbl.mem seen row then false
          else begin
            Hashtbl.add seen row ();
            true
          end
        else true
      in
      if fresh then rows := row :: !rows)
    bindings;
  (* Solution modifiers: ORDER BY, OFFSET, LIMIT. *)
  let rows = List.rev !rows in
  let rows =
    if q.order_by = [] then rows
    else List.stable_sort (Sparql.Ast.compare_rows q.order_by selected) rows
  in
  let rows =
    match q.offset with
    | None | Some 0 -> rows
    | Some o -> List.filteri (fun i _ -> i >= o) rows
  in
  let rows, truncated =
    match effective_limit with
    | None -> (rows, false)
    | Some l ->
        let total = List.length rows in
        (List.filteri (fun i _ -> i < l) rows, total > l)
  in
  { Engine.variables = selected; rows; truncated }

let query_string ?timeout ?limit ?open_objects ?namespaces engine src =
  query ?timeout ?limit ?open_objects engine
    (Sparql.Parser.parse_algebra ?namespaces src)
