type slots = { names : string array; of_var : string -> int option }

let slots (q : Query_graph.t) =
  let open_names = List.map (fun o -> o.Query_graph.obj_var) q.opens in
  let names = Array.append q.var_names (Array.of_list open_names) in
  let index = Hashtbl.create (Array.length names) in
  Array.iteri (fun i name -> if not (Hashtbl.mem index name) then Hashtbl.add index name i) names;
  { names; of_var = (fun v -> Hashtbl.find_opt index v) }

(* Cartesian product of satellite candidate sets, as a lazy sequence of
   (query vertex, data vertex) lists. *)
let rec sat_product (sats : (int * int array) list) :
    (int * int) list Seq.t =
  match sats with
  | [] -> Seq.return []
  | (u, set) :: rest ->
      Seq.concat_map
        (fun tail -> Seq.map (fun v -> (u, v) :: tail) (Array.to_seq set))
        (sat_product rest)

let solution_seq (sol : Matcher.solution) : (int * int) list Seq.t =
  Seq.map (fun tail -> sol.core @ tail) (sat_product sol.sats)

let component_seq sols : (int * int) list Seq.t =
  Seq.concat_map solution_seq (List.to_seq sols)

(* Combine the per-component assignment sequences by Cartesian product. *)
let assignments (solutions : Matcher.solution list array) :
    (int * int) list Seq.t =
  Array.fold_left
    (fun acc sols ->
      Seq.concat_map
        (fun partial ->
          Seq.map (fun more -> List.rev_append more partial) (component_seq sols))
        acc)
    (Seq.return []) solutions

let rows ~db ~q ~lits ~solutions =
  let n = Query_graph.vertex_count q in
  let opens = Array.of_list q.Query_graph.opens in
  let total_slots = n + Array.length opens in
  let assignment_rows pairs : Rdf.Term.t array Seq.t =
    let arr = Array.make (max n 1) (-1) in
    List.iter (fun (u, v) -> arr.(u) <- v) pairs;
    let base =
      Array.init total_slots (fun i ->
          if i < n then Database.term_of_vertex db arr.(i)
          else Rdf.Term.iri "" (* placeholder for open slots *))
    in
    let rec open_seq i row : Rdf.Term.t array Seq.t =
      if i = Array.length opens then Seq.return row
      else
        let o = opens.(i) in
        let terms =
          Literal_bindings.bindings lits ~vertex:arr.(o.Query_graph.subject)
            ~pred:o.Query_graph.pred
        in
        Seq.concat_map
          (fun t ->
            let row' = Array.copy row in
            row'.(n + i) <- t;
            open_seq (i + 1) row')
          (List.to_seq terms)
    in
    open_seq 0 base
  in
  Seq.concat_map assignment_rows (assignments solutions)

let count ~q ~lits ~db ~solutions =
  if q.Query_graph.opens = [] then begin
    let saturating_add a b = if a > max_int - b then max_int else a + b in
    let saturating_mul a b =
      if a = 0 || b = 0 then 0 else if a > max_int / b then max_int else a * b
    in
    Array.fold_left
      (fun total sols ->
        saturating_mul total
          (List.fold_left
             (fun n sol -> saturating_add n (Matcher.count_embeddings sol))
             0 sols))
      1 solutions
  end
  else Seq.fold_left (fun n _ -> n + 1) 0 (rows ~db ~q ~lits ~solutions)
