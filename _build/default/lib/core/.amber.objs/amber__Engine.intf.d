lib/core/engine.mli: Attribute_index Database Decompose Format Matcher Neighbourhood_index Rdf Sparql Synopsis_index
