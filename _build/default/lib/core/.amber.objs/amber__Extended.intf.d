lib/core/extended.mli: Engine Rdf Sparql
