lib/core/database.mli: Format Mgraph Rdf
