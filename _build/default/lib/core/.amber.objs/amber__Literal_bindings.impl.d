lib/core/literal_bindings.ml: Array Database List Mgraph Rdf
