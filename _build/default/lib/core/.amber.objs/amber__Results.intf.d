lib/core/results.mli: Engine
