lib/core/deadline.mli:
