lib/core/neighbourhood_index.mli: Database Mgraph
