lib/core/neighbourhood_index.ml: Array Database Mgraph Otil
