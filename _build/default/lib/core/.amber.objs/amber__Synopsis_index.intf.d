lib/core/synopsis_index.mli: Database Mgraph
