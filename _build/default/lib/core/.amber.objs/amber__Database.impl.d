lib/core/database.ml: Array Format List Mgraph Rdf String
