lib/core/synopsis_index.ml: Array Database List Mgraph Rect Rtree
