lib/core/extended.ml: Deadline Engine Float Hashtbl List Rdf Sparql Str String
