lib/core/results.ml: Buffer Char Engine List Printf Rdf String
