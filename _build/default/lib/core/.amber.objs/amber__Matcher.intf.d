lib/core/matcher.mli: Attribute_index Database Deadline Decompose Neighbourhood_index Query_graph Synopsis_index
