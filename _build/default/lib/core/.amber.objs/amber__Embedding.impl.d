lib/core/embedding.ml: Array Database Hashtbl List Literal_bindings Matcher Query_graph Rdf Seq
