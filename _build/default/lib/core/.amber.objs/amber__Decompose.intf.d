lib/core/decompose.mli: Query_graph
