lib/core/embedding.mli: Database Literal_bindings Matcher Query_graph Rdf Seq
