lib/core/query_graph.ml: Array Database Format Hashtbl List Mgraph Option Printf Rdf Sparql String
