lib/core/matcher.ml: Array Attribute_index Database Deadline Decompose List Mgraph Neighbourhood_index Query_graph Synopsis_index
