lib/core/attribute_index.mli: Database
