lib/core/query_graph.mli: Database Format Mgraph Sparql
