lib/core/decompose.ml: Array Hashtbl List Mgraph Query_graph Queue
