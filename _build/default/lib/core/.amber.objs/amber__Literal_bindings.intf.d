lib/core/literal_bindings.mli: Database Rdf
