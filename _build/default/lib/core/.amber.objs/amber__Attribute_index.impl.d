lib/core/attribute_index.ml: Array Database Mgraph
