type t = { db : Database.t }

let create db = { db }

let bindings t ~vertex ~pred =
  let db = t.db in
  let g = Database.graph db in
  let from_edges =
    match Database.edge_type_of_iri db pred with
    | None -> []
    | Some e ->
        Array.fold_right
          (fun (v', types) acc ->
            if Mgraph.Sorted_ints.mem types e then
              Database.term_of_vertex db v' :: acc
            else acc)
          (Mgraph.Multigraph.adjacency g Mgraph.Multigraph.Out vertex)
          []
  in
  let from_literals =
    List.map
      (fun lit -> Rdf.Term.Literal lit)
      (Database.literals_of db ~vertex ~pred)
  in
  from_edges @ from_literals
