(** Serialization of query answers: W3C SPARQL 1.1 results JSON, and
    CSV/TSV per the SPARQL 1.1 Query Results CSV/TSV formats. *)

val to_json : Engine.answer -> string
(** [application/sparql-results+json]: head/vars + results/bindings,
    with [uri] / [literal] (plus [xml:lang] or [datatype]) / [bnode]
    term objects. Unbound variables are omitted from their binding, as
    the spec requires. *)

val to_csv : Engine.answer -> string
(** Header row of variable names, then one row per result. IRIs appear
    bare, literals as their lexical form; fields containing commas,
    quotes or newlines are quoted and escaped. Unbound = empty field. *)

val to_tsv : Engine.answer -> string
(** Header of [?var] names; terms in N-Triples syntax, tab separated. *)

val ask_json : bool -> string
(** W3C SPARQL results JSON for an ASK answer. *)
