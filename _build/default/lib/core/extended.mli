(** Evaluation of the extended SPARQL algebra ([UNION] / [OPTIONAL] /
    [FILTER]) on top of the AMbER engine — the paper's Section 8 future
    work.

    Basic graph patterns are answered by {!Engine.query}; the algebra
    operators combine their binding sets:

    - [Join]: compatible-mapping join (nested loop; mappings can be
      partial because of [OPTIONAL]);
    - [Union]: concatenation;
    - [Optional]: left outer join — left bindings survive unextended
      when no compatible right binding exists;
    - [Filter]: SPARQL-style evaluation where a type error (e.g. an
      unbound variable in a comparison) makes the condition false.
      Comparisons are numeric when both operands have numeric lexical
      forms, lexicographic on literal values otherwise; [REGEX] uses
      OCaml [Str] syntax and searches anywhere in the value. One
      simplification against SPARQL's full three-valued logic: [&&] and
      [||] short-circuit left to right, so an error in the left operand
      eliminates the row even when SPARQL's truth table would recover
      (e.g. [error || true]). *)

val query :
  ?timeout:float ->
  ?limit:int ->
  ?open_objects:bool ->
  Engine.t ->
  Sparql.Algebra.t ->
  Engine.answer
(** @raise Engine.Unsupported on out-of-fragment BGPs.
    @raise Deadline.Expired on timeout. *)

val query_string :
  ?timeout:float ->
  ?limit:int ->
  ?open_objects:bool ->
  ?namespaces:Rdf.Namespace.t ->
  Engine.t ->
  string ->
  Engine.answer
(** Parse with {!Sparql.Parser.parse_algebra} and evaluate. *)
