lib/bench_util/runner.ml: Amber Baselines Format List Stats Unix
