lib/bench_util/table_fmt.mli:
