lib/bench_util/table_fmt.ml: Buffer List Option Printf String
