lib/bench_util/stats.ml: Float List
