lib/bench_util/runner.mli: Baselines Format Sparql
