lib/bench_util/stats.mli:
