(** Plain-text table rendering for the benchmark reports. *)

val render : header:string list -> string list list -> string
(** Column-aligned table with a separator under the header. *)

val print : header:string list -> string list list -> unit

val ms : float -> string
(** Format seconds as milliseconds with sensible precision. *)

val pct : answered:int -> total:int -> string
(** "% unanswered" cell. *)
