let render ~header rows =
  let all = header :: rows in
  let cols =
    List.fold_left (fun m r -> max m (List.length r)) 0 all
  in
  let width i =
    List.fold_left
      (fun m row ->
        match List.nth_opt row i with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i w ->
        let cell = Option.value ~default:"" (List.nth_opt row i) in
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (w - String.length cell + 2) ' '))
      widths;
    Buffer.add_char buf '\n'
  in
  emit_row header;
  List.iteri
    (fun i w ->
      ignore i;
      Buffer.add_string buf (String.make w '-');
      Buffer.add_string buf "  ")
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~header rows = print_string (render ~header rows)

let ms seconds =
  let v = 1000. *. seconds in
  if v < 10. then Printf.sprintf "%.3f" v
  else if v < 1000. then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.0f" v

let pct ~answered ~total =
  if total = 0 then "-"
  else Printf.sprintf "%.0f%%" (100. *. float_of_int (total - answered) /. float_of_int total)
