lib/rtree/rect.ml: Array Format List Printf String
