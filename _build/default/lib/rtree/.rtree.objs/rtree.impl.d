lib/rtree/rtree.ml: Array Float Int List Printf Rect
