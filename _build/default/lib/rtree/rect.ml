type t = { lo : int array; hi : int array }

let make ~lo ~hi =
  let k = Array.length lo in
  if Array.length hi <> k then invalid_arg "Rect.make: dimension mismatch";
  for i = 0 to k - 1 do
    if lo.(i) > hi.(i) then
      invalid_arg
        (Printf.sprintf "Rect.make: lo.(%d) = %d > hi.(%d) = %d" i lo.(i) i
           hi.(i))
  done;
  { lo; hi }

let origin_box hi =
  let k = Array.length hi in
  let lo = Array.make k 0 and top = Array.make k 0 in
  for i = 0 to k - 1 do
    if hi.(i) >= 0 then top.(i) <- hi.(i) else lo.(i) <- hi.(i)
  done;
  { lo; hi = top }

let dims r = Array.length r.lo

let contains outer inner =
  let k = dims outer in
  let rec loop i =
    i >= k
    || (outer.lo.(i) <= inner.lo.(i) && inner.hi.(i) <= outer.hi.(i) && loop (i + 1))
  in
  dims inner = k && loop 0

let contains_point r p =
  let k = dims r in
  let rec loop i =
    i >= k || (r.lo.(i) <= p.(i) && p.(i) <= r.hi.(i) && loop (i + 1))
  in
  Array.length p = k && loop 0

let intersects a b =
  let k = dims a in
  let rec loop i =
    i >= k || (a.lo.(i) <= b.hi.(i) && b.lo.(i) <= a.hi.(i) && loop (i + 1))
  in
  dims b = k && loop 0

let union a b =
  let k = dims a in
  if dims b <> k then invalid_arg "Rect.union: dimension mismatch";
  {
    lo = Array.init k (fun i -> min a.lo.(i) b.lo.(i));
    hi = Array.init k (fun i -> max a.hi.(i) b.hi.(i));
  }

let area r =
  let k = dims r in
  let a = ref 1.0 in
  for i = 0 to k - 1 do
    a := !a *. float_of_int (r.hi.(i) - r.lo.(i))
  done;
  !a

let enlargement r extra = area (union r extra) -. area r

let equal a b =
  dims a = dims b
  &&
  let rec loop i =
    i >= dims a || (a.lo.(i) = b.lo.(i) && a.hi.(i) = b.hi.(i) && loop (i + 1))
  in
  loop 0

let pp ppf r =
  let show a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  Format.fprintf ppf "[%s]..[%s]" (show r.lo) (show r.hi)
