(** Axis-parallel k-dimensional integer rectangles.

    A rectangle is a pair of corners [lo ≤ hi] (componentwise). The
    signature index stores origin-anchored boxes [\[0, f_i\]] per the
    paper, but this module is fully general. *)

type t = { lo : int array; hi : int array }

val make : lo:int array -> hi:int array -> t
(** @raise Invalid_argument when dimensions differ or [lo > hi]
    somewhere. *)

val origin_box : int array -> t
(** [origin_box hi] is the box spanning [0 .. hi_i] in every dimension —
    how the paper embeds a synopsis in feature space. Negative synopsis
    fields are allowed: the box is then [hi_i .. 0] on that axis. *)

val dims : t -> int
val contains : t -> t -> bool
(** [contains outer inner]. *)

val contains_point : t -> int array -> bool
val intersects : t -> t -> bool
val union : t -> t -> t
val area : t -> float
(** Product of side lengths (as float, to avoid overflow in 8-dim). *)

val enlargement : t -> t -> float
(** [enlargement r extra] = area (union r extra) − area r. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
