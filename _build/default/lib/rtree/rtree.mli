(** R-tree over k-dimensional integer rectangles.

    Supports Sort-Tile-Recursive bulk loading (the offline index build),
    single insertions with quadratic splitting (for incremental updates),
    and the two searches the engine needs: rectangles {e containing} a
    query box — the synopsis-containment probe of paper Lemma 1 — and
    rectangles intersecting a box. *)

type 'a t

val empty : ?max_entries:int -> unit -> 'a t
(** [max_entries] is the node fan-out [M] (default 16, minimum 4);
    min fill is [M/2] for splits. *)

val bulk_load : ?max_entries:int -> (Rect.t * 'a) list -> 'a t
(** Build by Sort-Tile-Recursive packing: near-full leaves, balanced
    height. All entries must share one dimensionality. *)

val insert : 'a t -> Rect.t -> 'a -> 'a t
(** Functional insert (path copying); the input tree remains valid. *)

val size : 'a t -> int
(** Number of stored entries. *)

val height : 'a t -> int
(** 0 for empty, 1 for a single leaf. *)

val search_containing : 'a t -> Rect.t -> 'a list
(** All values whose rectangle contains the query rectangle. *)

val search_intersecting : 'a t -> Rect.t -> 'a list

val fold_containing : Rect.t -> ('a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
(** Allocation-light variant of {!search_containing}. *)

val to_list : 'a t -> (Rect.t * 'a) list
(** All entries, in unspecified order. *)

val check_invariants : 'a t -> (unit, string) result
(** Validate MBR consistency, fan-out bounds and leaf depth uniformity —
    used by the test suite. *)
