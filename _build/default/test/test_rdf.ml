(* Unit and property tests for the rdf library. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* --- Term ---------------------------------------------------------- *)

let test_term_constructors () =
  checkb "iri is iri" true (Rdf.Term.is_iri (Rdf.Term.iri "http://a"));
  checkb "literal is literal" true (Rdf.Term.is_literal (Rdf.Term.literal "x"));
  checkb "bnode is bnode" true (Rdf.Term.is_bnode (Rdf.Term.bnode "b0"));
  checkb "iri is not literal" false (Rdf.Term.is_literal (Rdf.Term.iri "http://a"))

let test_term_literal_exclusive () =
  Alcotest.check_raises "datatype and lang together rejected"
    (Invalid_argument "Term.literal: a literal cannot have both datatype and lang")
    (fun () -> ignore (Rdf.Term.literal ~datatype:"dt" ~lang:"en" "v"))

let test_term_order () =
  let i = Rdf.Term.iri "http://a"
  and l = Rdf.Term.literal "a"
  and b = Rdf.Term.bnode "a" in
  checkb "iri < literal" true (Rdf.Term.compare i l < 0);
  checkb "literal < bnode" true (Rdf.Term.compare l b < 0);
  checkb "equal iris" true (Rdf.Term.equal i (Rdf.Term.iri "http://a"));
  checkb "literals differ by datatype" false
    (Rdf.Term.equal (Rdf.Term.literal "1") (Rdf.Term.literal ~datatype:"d" "1"))

let test_term_pp () =
  checks "iri syntax" "<http://a>" (Rdf.Term.to_string (Rdf.Term.iri "http://a"));
  checks "plain literal" "\"hi\"" (Rdf.Term.to_string (Rdf.Term.literal "hi"));
  checks "typed literal" "\"1\"^^<http://dt>"
    (Rdf.Term.to_string (Rdf.Term.literal ~datatype:"http://dt" "1"));
  checks "lang literal" "\"hi\"@en"
    (Rdf.Term.to_string (Rdf.Term.literal ~lang:"en" "hi"));
  checks "bnode" "_:b0" (Rdf.Term.to_string (Rdf.Term.bnode "b0"));
  checks "escaped quote" {|"a\"b"|} (Rdf.Term.to_string (Rdf.Term.literal {|a"b|}));
  checks "escaped newline" {|"a\nb"|} (Rdf.Term.to_string (Rdf.Term.literal "a\nb"))

(* --- Triple -------------------------------------------------------- *)

let test_triple_invariants () =
  checkb "iri subject ok" true
    (Rdf.Triple.make (Rdf.Term.iri "s") (Rdf.Term.iri "p") (Rdf.Term.literal "o")
     |> fun t -> Rdf.Term.is_iri t.Rdf.Triple.subject);
  Alcotest.check_raises "literal subject rejected"
    (Rdf.Triple.Invalid "subject cannot be a literal") (fun () ->
      ignore (Rdf.Triple.make (Rdf.Term.literal "s") (Rdf.Term.iri "p") (Rdf.Term.iri "o")));
  Alcotest.check_raises "bnode predicate rejected"
    (Rdf.Triple.Invalid "predicate must be an IRI") (fun () ->
      ignore (Rdf.Triple.make (Rdf.Term.iri "s") (Rdf.Term.bnode "p") (Rdf.Term.iri "o")))

let test_triple_order () =
  let t1 = Rdf.Triple.spo "a" "p" (Rdf.Term.iri "x")
  and t2 = Rdf.Triple.spo "b" "p" (Rdf.Term.iri "x") in
  checkb "subject-major order" true (Rdf.Triple.compare t1 t2 < 0);
  checkb "equal triples" true (Rdf.Triple.equal t1 t1)

(* --- Namespace ----------------------------------------------------- *)

let test_namespace_expand () =
  let ns = Rdf.Namespace.common in
  check
    Alcotest.(option string)
    "expand dbo" (Some "http://dbpedia.org/ontology/birthPlace")
    (Rdf.Namespace.expand ns "dbo:birthPlace");
  check Alcotest.(option string) "unknown prefix" None (Rdf.Namespace.expand ns "zzz:x");
  check Alcotest.(option string) "no colon" None (Rdf.Namespace.expand ns "plain")

let test_namespace_compact () =
  let ns = Rdf.Namespace.common in
  check
    Alcotest.(option string)
    "compact dbpedia resource" (Some "dbr:London")
    (Rdf.Namespace.compact ns "http://dbpedia.org/resource/London");
  check Alcotest.(option string) "no match" None
    (Rdf.Namespace.compact ns "urn:nothing")

let test_namespace_longest_match () =
  let ns =
    Rdf.Namespace.empty
    |> fun ns ->
    Rdf.Namespace.add ns ~prefix:"a" ~iri:"http://x/"
    |> fun ns -> Rdf.Namespace.add ns ~prefix:"b" ~iri:"http://x/deep/"
  in
  check
    Alcotest.(option string)
    "longest base wins" (Some "b:leaf")
    (Rdf.Namespace.compact ns "http://x/deep/leaf")

let test_namespace_rebind () =
  let ns = Rdf.Namespace.add Rdf.Namespace.empty ~prefix:"p" ~iri:"http://one/" in
  let ns = Rdf.Namespace.add ns ~prefix:"p" ~iri:"http://two/" in
  check
    Alcotest.(option string)
    "later binding replaces" (Some "http://two/x")
    (Rdf.Namespace.expand ns "p:x")

(* --- N-Triples ----------------------------------------------------- *)

let test_ntriples_parse_basic () =
  let t =
    Rdf.Ntriples.parse_line "<http://s> <http://p> <http://o> ."
    |> Option.get
  in
  checks "subject" "<http://s>" (Rdf.Term.to_string t.Rdf.Triple.subject);
  checks "object" "<http://o>" (Rdf.Term.to_string t.Rdf.Triple.obj)

let test_ntriples_parse_literals () =
  let t =
    Rdf.Ntriples.parse_line
      {|<http://s> <http://p> "90000"^^<http://www.w3.org/2001/XMLSchema#integer> .|}
    |> Option.get
  in
  (match t.Rdf.Triple.obj with
  | Rdf.Term.Literal { value; datatype = Some dt; lang = None } ->
      checks "value" "90000" value;
      checks "datatype" "http://www.w3.org/2001/XMLSchema#integer" dt
  | _ -> Alcotest.fail "expected typed literal");
  let t2 =
    Rdf.Ntriples.parse_line {|<http://s> <http://p> "bonjour"@fr .|} |> Option.get
  in
  match t2.Rdf.Triple.obj with
  | Rdf.Term.Literal { lang = Some "fr"; _ } -> ()
  | _ -> Alcotest.fail "expected lang literal"

let test_ntriples_skip_noise () =
  let doc = "# comment\n\n<http://s> <http://p> _:b . # trailing\n" in
  let ts = Rdf.Ntriples.parse_string doc in
  Alcotest.(check int) "one triple" 1 (List.length ts)

let test_ntriples_escapes () =
  let t =
    Rdf.Ntriples.parse_line {|<http://s> <http://p> "a\"b\nc\\d" .|} |> Option.get
  in
  match t.Rdf.Triple.obj with
  | Rdf.Term.Literal { value; _ } -> checks "unescaped" "a\"b\nc\\d" value
  | _ -> Alcotest.fail "expected literal"

let test_ntriples_unicode_escape () =
  let t =
    Rdf.Ntriples.parse_line
      {|<http://s> <http://p> "caf\u00E9 \u2603" .|}
    |> Option.get
  in
  match t.Rdf.Triple.obj with
  | Rdf.Term.Literal { value; _ } ->
      checks "utf8 of \\u escapes" "caf\xc3\xa9 \xe2\x98\x83" value
  | _ -> Alcotest.fail "expected literal"

let test_ntriples_errors () =
  let bad line =
    match Rdf.Ntriples.parse_line line with
    | exception Rdf.Ntriples.Parse_error _ -> true
    | _ -> false
  in
  checkb "missing dot" true (bad "<http://s> <http://p> <http://o>");
  checkb "unterminated iri" true (bad "<http://s> <http://p> <http://o .");
  checkb "unterminated literal" true (bad {|<http://s> <http://p> "abc .|});
  checkb "literal subject" true (bad {|"s" <http://p> <http://o> .|});
  checkb "trailing garbage" true (bad "<http://s> <http://p> <http://o> . x")

let test_ntriples_file_roundtrip () =
  let path = Filename.temp_file "amber_test" ".nt" in
  Rdf.Ntriples.write_file path Fixtures.paper_triples;
  let back = Rdf.Ntriples.parse_file path in
  Sys.remove path;
  Alcotest.(check int)
    "triple count survives" (List.length Fixtures.paper_triples)
    (List.length back);
  checkb "triples equal" true (List.for_all2 Rdf.Triple.equal Fixtures.paper_triples back)

(* --- properties ---------------------------------------------------- *)

let gen_iri =
  QCheck.Gen.(
    map
      (fun parts -> "http://example.org/" ^ String.concat "/" parts)
      (list_size (int_range 1 3) (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))))

let gen_literal_string =
  QCheck.Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 20))

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (4, map Rdf.Term.iri gen_iri);
        (2, map Rdf.Term.literal gen_literal_string);
        (1, map (fun s -> Rdf.Term.literal ~datatype:("http://dt/" ^ s) "v")
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)));
        (1, map (fun s -> Rdf.Term.bnode s)
             (string_size ~gen:(char_range 'a' 'z') (int_range 1 6)));
      ])

let gen_triple =
  QCheck.Gen.(
    map2
      (fun (s, p) o ->
        Rdf.Triple.make (Rdf.Term.iri s) (Rdf.Term.iri p) o)
      (pair gen_iri gen_iri) gen_term)

let arb_triple = QCheck.make ~print:Rdf.Triple.to_string gen_triple

let prop_roundtrip =
  QCheck.Test.make ~name:"ntriples print/parse roundtrip" ~count:500 arb_triple
    Rdf.Ntriples.roundtrip_safe

let prop_term_order_total =
  QCheck.Test.make ~name:"term compare is antisymmetric" ~count:300
    (QCheck.pair (QCheck.make gen_term) (QCheck.make gen_term))
    (fun (a, b) ->
      let c1 = Rdf.Term.compare a b and c2 = Rdf.Term.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_term_hash_consistent =
  QCheck.Test.make ~name:"equal terms hash equally" ~count:300
    (QCheck.make gen_term)
    (fun t -> Rdf.Term.hash t = Rdf.Term.hash t)

let suite =
  [
    ( "rdf.term",
      [
        Alcotest.test_case "constructors" `Quick test_term_constructors;
        Alcotest.test_case "literal exclusivity" `Quick test_term_literal_exclusive;
        Alcotest.test_case "ordering" `Quick test_term_order;
        Alcotest.test_case "printing" `Quick test_term_pp;
      ] );
    ( "rdf.triple",
      [
        Alcotest.test_case "invariants" `Quick test_triple_invariants;
        Alcotest.test_case "ordering" `Quick test_triple_order;
      ] );
    ( "rdf.namespace",
      [
        Alcotest.test_case "expand" `Quick test_namespace_expand;
        Alcotest.test_case "compact" `Quick test_namespace_compact;
        Alcotest.test_case "longest match" `Quick test_namespace_longest_match;
        Alcotest.test_case "rebind" `Quick test_namespace_rebind;
      ] );
    ( "rdf.ntriples",
      [
        Alcotest.test_case "basic" `Quick test_ntriples_parse_basic;
        Alcotest.test_case "literals" `Quick test_ntriples_parse_literals;
        Alcotest.test_case "comments and blanks" `Quick test_ntriples_skip_noise;
        Alcotest.test_case "escapes" `Quick test_ntriples_escapes;
        Alcotest.test_case "unicode escape" `Quick test_ntriples_unicode_escape;
        Alcotest.test_case "errors" `Quick test_ntriples_errors;
        Alcotest.test_case "file roundtrip" `Quick test_ntriples_file_roundtrip;
        QCheck_alcotest.to_alcotest prop_roundtrip;
        QCheck_alcotest.to_alcotest prop_term_order_total;
        QCheck_alcotest.to_alcotest prop_term_hash_consistent;
      ] );
  ]
