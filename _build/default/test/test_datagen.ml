(* Tests for the data and workload generators. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Prng ------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Datagen.Prng.create 42 and b = Datagen.Prng.create 42 in
  let xs = List.init 100 (fun _ -> Datagen.Prng.next a) in
  let ys = List.init 100 (fun _ -> Datagen.Prng.next b) in
  checkb "same stream" true (xs = ys);
  let c = Datagen.Prng.create 43 in
  let zs = List.init 100 (fun _ -> Datagen.Prng.next c) in
  checkb "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let rng = Datagen.Prng.create 7 in
  for _ = 1 to 10_000 do
    let v = Datagen.Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 10_000 do
    let f = Datagen.Prng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_zipf_skew () =
  let rng = Datagen.Prng.create 11 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let i = Datagen.Prng.zipf rng ~n:10 ~s:1.2 in
    counts.(i) <- counts.(i) + 1
  done;
  checkb "head heavier than tail" true (counts.(0) > 3 * counts.(9));
  checkb "monotone-ish" true (counts.(0) > counts.(4))

let test_prng_sample () =
  let rng = Datagen.Prng.create 3 in
  let arr = Array.init 10 Fun.id in
  let s = Datagen.Prng.sample rng arr 4 in
  checki "four distinct" 4 (List.length (List.sort_uniq compare s));
  checki "clamped" 10 (List.length (Datagen.Prng.sample rng arr 99))

(* --- LUBM ------------------------------------------------------------- *)

let test_lubm_shape () =
  let triples = Datagen.Lubm.generate ~universities:2 () in
  checkb "plausible volume" true (List.length triples > 5_000);
  let db = Amber.Database.of_triples triples in
  checki "13 object properties" 13 (Amber.Database.edge_type_count db);
  checkb "attributes present" true (Amber.Database.attribute_count db > 100);
  (* Deterministic. *)
  let again = Datagen.Lubm.generate ~universities:2 () in
  checkb "deterministic" true
    (List.for_all2 Rdf.Triple.equal triples again)

let test_lubm_predicate_discipline () =
  (* No predicate may have both IRI and literal objects. *)
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let kinds = Hashtbl.create 32 in
  List.iter
    (fun { Rdf.Triple.predicate; obj; _ } ->
      let p = Rdf.Term.to_string predicate in
      let k = if Rdf.Term.is_literal obj then `Lit else `Iri in
      match Hashtbl.find_opt kinds p with
      | None -> Hashtbl.add kinds p k
      | Some k' -> if k <> k' then Alcotest.failf "mixed predicate %s" p)
    triples

(* --- Scale free -------------------------------------------------------- *)

let test_scale_free_shape () =
  let profile = Datagen.Scale_free.dbpedia_like ~scale:0.02 () in
  let triples = Datagen.Scale_free.generate ~seed:5 profile in
  let db = Amber.Database.of_triples triples in
  checkb "edges near target" true
    (Mgraph.Multigraph.triple_edge_count (Amber.Database.graph db)
    >= profile.Datagen.Scale_free.edges / 2);
  checkb "many predicates" true (Amber.Database.edge_type_count db > 50);
  (* Heavy tail: the max degree should far exceed the average. *)
  let g = Amber.Database.graph db in
  let n = Mgraph.Multigraph.vertex_count g in
  let max_deg = ref 0 and total = ref 0 in
  for v = 0 to n - 1 do
    let d = Mgraph.Multigraph.degree g v in
    total := !total + d;
    if d > !max_deg then max_deg := d
  done;
  let avg = float_of_int !total /. float_of_int n in
  checkb "skewed degrees" true (float_of_int !max_deg > 10.0 *. avg)

let test_yago_predicate_count () =
  let profile = Datagen.Scale_free.yago_like ~scale:0.02 () in
  let triples = Datagen.Scale_free.generate ~seed:6 profile in
  let db = Amber.Database.of_triples triples in
  checkb "at most 38 object predicates" true (Amber.Database.edge_type_count db <= 38)

(* --- Workload ----------------------------------------------------------- *)

let lubm_corpus = lazy (Datagen.Workload.corpus (Datagen.Lubm.generate ~universities:1 ()))

let query_size ast = List.length ast.Sparql.Ast.where

(* Connectivity of the query pattern through shared variables/constants. *)
let connected ast =
  let patterns = ast.Sparql.Ast.where in
  let key = function
    | Sparql.Ast.Var v -> Some ("v:" ^ v)
    | Sparql.Ast.Iri i -> Some ("i:" ^ i)
    | Sparql.Ast.Lit _ -> None
  in
  let nodes p =
    List.filter_map key [ p.Sparql.Ast.subject; p.Sparql.Ast.obj ]
  in
  match patterns with
  | [] -> true
  | first :: _ ->
      let reached = Hashtbl.create 16 in
      List.iter (fun k -> Hashtbl.replace reached k ()) (nodes first);
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun p ->
            let ks = nodes p in
            if List.exists (Hashtbl.mem reached) ks then
              List.iter
                (fun k ->
                  if not (Hashtbl.mem reached k) then begin
                    Hashtbl.replace reached k ();
                    changed := true
                  end)
                ks)
          patterns
      done;
      List.for_all (fun p -> List.exists (Hashtbl.mem reached) (nodes p)) patterns

let test_workload_star () =
  let corpus = Lazy.force lubm_corpus in
  let queries =
    Datagen.Workload.generate ~seed:9 corpus ~shape:Datagen.Workload.Star ~size:6
      ~count:10
  in
  checki "ten queries" 10 (List.length queries);
  List.iter
    (fun ast ->
      checki "size respected" 6 (query_size ast);
      checkb "connected" true (connected ast);
      (* Star: some variable or constant occurs in every pattern. *)
      let occurs t p =
        Sparql.Ast.term_equal p.Sparql.Ast.subject t
        || Sparql.Ast.term_equal p.Sparql.Ast.obj t
      in
      let candidates =
        List.concat_map
          (fun p -> [ p.Sparql.Ast.subject; p.Sparql.Ast.obj ])
          ast.Sparql.Ast.where
      in
      checkb "has a centre" true
        (List.exists
           (fun t ->
             (match t with Sparql.Ast.Lit _ -> false | _ -> true)
             && List.for_all (occurs t) ast.Sparql.Ast.where)
           candidates))
    queries

let test_workload_complex () =
  let corpus = Lazy.force lubm_corpus in
  let queries =
    Datagen.Workload.generate ~seed:10 corpus ~shape:Datagen.Workload.Complex
      ~size:10 ~count:10
  in
  checki "ten queries" 10 (List.length queries);
  List.iter
    (fun ast ->
      checki "size respected" 10 (query_size ast);
      checkb "connected" true (connected ast))
    queries

let test_workload_satisfiable () =
  (* Carved from the data, queries must have at least one answer (on the
     engine that is easiest to trust here: the triple store). *)
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let corpus = Datagen.Workload.corpus triples in
  let store = Baselines.Triple_store.load triples in
  let queries =
    Datagen.Workload.generate ~seed:21 corpus ~shape:Datagen.Workload.Complex
      ~size:5 ~count:5
  in
  List.iter
    (fun ast ->
      let a = Baselines.Triple_store.query ~limit:1 store ast in
      checkb "satisfiable" true (a.Baselines.Answer.rows <> []))
    queries

let test_workload_determinism () =
  let corpus = Lazy.force lubm_corpus in
  let q1 =
    Datagen.Workload.generate ~seed:5 corpus ~shape:Datagen.Workload.Star ~size:4
      ~count:5
  in
  let q2 =
    Datagen.Workload.generate ~seed:5 corpus ~shape:Datagen.Workload.Star ~size:4
      ~count:5
  in
  checkb "same queries" true
    (List.for_all2 (fun a b -> Sparql.Ast.to_string a = Sparql.Ast.to_string b) q1 q2)

let suite =
  [
    ( "datagen.prng",
      [
        Alcotest.test_case "determinism" `Quick test_prng_determinism;
        Alcotest.test_case "bounds" `Quick test_prng_bounds;
        Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
        Alcotest.test_case "sample" `Quick test_prng_sample;
      ] );
    ( "datagen.lubm",
      [
        Alcotest.test_case "shape" `Quick test_lubm_shape;
        Alcotest.test_case "predicate discipline" `Quick test_lubm_predicate_discipline;
      ] );
    ( "datagen.scale_free",
      [
        Alcotest.test_case "dbpedia-like shape" `Quick test_scale_free_shape;
        Alcotest.test_case "yago-like predicates" `Quick test_yago_predicate_count;
      ] );
    ( "datagen.workload",
      [
        Alcotest.test_case "star" `Quick test_workload_star;
        Alcotest.test_case "complex" `Quick test_workload_complex;
        Alcotest.test_case "satisfiable" `Quick test_workload_satisfiable;
        Alcotest.test_case "determinism" `Quick test_workload_determinism;
      ] );
  ]
