(* R-tree tests: invariants after bulk load and inserts, and search
   agreement with a linear scan on random rectangle sets. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rect lo hi = Rect.make ~lo ~hi

let test_rect_basics () =
  let r = rect [| 0; 0 |] [| 4; 6 |] in
  checkb "contains inner" true (Rect.contains r (rect [| 1; 1 |] [| 2; 2 |]));
  checkb "contains itself" true (Rect.contains r r);
  checkb "not contains overlap" false
    (Rect.contains r (rect [| 3; 3 |] [| 5; 5 |]));
  checkb "intersects overlap" true (Rect.intersects r (rect [| 3; 3 |] [| 5; 5 |]));
  checkb "no intersection" false (Rect.intersects r (rect [| 5; 7 |] [| 6; 8 |]));
  checkb "point in" true (Rect.contains_point r [| 4; 6 |]);
  checkb "point out" false (Rect.contains_point r [| 5; 0 |]);
  Alcotest.(check (float 1e-9)) "area" 24.0 (Rect.area r);
  let u = Rect.union r (rect [| -1; 2 |] [| 2; 9 |]) in
  checkb "union covers both" true
    (Rect.contains u r && Rect.contains u (rect [| -1; 2 |] [| 2; 9 |]))

let test_rect_validation () =
  Alcotest.check_raises "lo > hi rejected"
    (Invalid_argument "Rect.make: lo.(0) = 3 > hi.(0) = 1") (fun () ->
      ignore (rect [| 3 |] [| 1 |]));
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Rect.make: dimension mismatch") (fun () ->
      ignore (rect [| 1; 2 |] [| 3 |]))

let test_origin_box_negative () =
  let b = Rect.origin_box [| 3; -2; 0 |] in
  checkb "negative goes to lo" true
    (b.Rect.lo.(1) = -2 && b.Rect.hi.(1) = 0 && b.Rect.hi.(0) = 3)

let random_rects rng n dims span =
  List.init n (fun i ->
      let lo = Array.init dims (fun _ -> Datagen.Prng.int rng span - (span / 2)) in
      let hi = Array.init dims (fun d -> lo.(d) + Datagen.Prng.int rng span) in
      (rect lo hi, i))

let test_bulk_load_invariants () =
  let rng = Datagen.Prng.create 3 in
  List.iter
    (fun n ->
      let entries = random_rects rng n 8 20 in
      let t = Rtree.bulk_load ~max_entries:8 entries in
      checki (Printf.sprintf "size %d" n) n (Rtree.size t);
      match Rtree.check_invariants t with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invariants broken at n=%d: %s" n e)
    [ 0; 1; 7; 8; 9; 64; 257; 1000 ]

let test_insert_invariants () =
  let rng = Datagen.Prng.create 5 in
  let entries = random_rects rng 300 4 16 in
  let t =
    List.fold_left (fun t (r, v) -> Rtree.insert t r v) (Rtree.empty ~max_entries:6 ())
      entries
  in
  checki "insert size" 300 (Rtree.size t);
  (match Rtree.check_invariants t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invariants broken: %s" e);
  checkb "height grew" true (Rtree.height t > 1)

let test_functional_insert_preserves () =
  let t0 = Rtree.empty () in
  let t1 = Rtree.insert t0 (rect [| 0 |] [| 1 |]) 1 in
  let t2 = Rtree.insert t1 (rect [| 2 |] [| 3 |]) 2 in
  checki "t0 untouched" 0 (Rtree.size t0);
  checki "t1 untouched" 1 (Rtree.size t1);
  checki "t2 has both" 2 (Rtree.size t2)

let linear_containing entries q =
  List.filter_map (fun (r, v) -> if Rect.contains r q then Some v else None) entries

let linear_intersecting entries q =
  List.filter_map (fun (r, v) -> if Rect.intersects r q then Some v else None) entries

let prop_search_agreement =
  QCheck.Test.make ~name:"tree searches agree with linear scan" ~count:60
    (QCheck.make QCheck.Gen.(pair (int_range 0 300) int))
    (fun (n, seed) ->
      let rng = Datagen.Prng.create seed in
      let entries = random_rects rng n 5 12 in
      let bulk = Rtree.bulk_load ~max_entries:5 entries in
      let incr =
        List.fold_left (fun t (r, v) -> Rtree.insert t r v) (Rtree.empty ~max_entries:5 ())
          entries
      in
      let queries = List.map fst (random_rects rng 20 5 12) in
      List.for_all
        (fun q ->
          let expect_c = List.sort compare (linear_containing entries q) in
          let expect_i = List.sort compare (linear_intersecting entries q) in
          List.sort compare (Rtree.search_containing bulk q) = expect_c
          && List.sort compare (Rtree.search_containing incr q) = expect_c
          && List.sort compare (Rtree.search_intersecting bulk q) = expect_i
          && List.sort compare (Rtree.search_intersecting incr q) = expect_i)
        queries)

let test_to_list () =
  let rng = Datagen.Prng.create 9 in
  let entries = random_rects rng 50 3 10 in
  let t = Rtree.bulk_load entries in
  let got = List.sort compare (List.map snd (Rtree.to_list t)) in
  checkb "all values present" true (got = List.init 50 Fun.id)

let suite =
  [
    ( "rtree.rect",
      [
        Alcotest.test_case "basics" `Quick test_rect_basics;
        Alcotest.test_case "validation" `Quick test_rect_validation;
        Alcotest.test_case "origin box negatives" `Quick test_origin_box_negative;
      ] );
    ( "rtree.tree",
      [
        Alcotest.test_case "bulk load invariants" `Quick test_bulk_load_invariants;
        Alcotest.test_case "insert invariants" `Quick test_insert_invariants;
        Alcotest.test_case "functional inserts" `Quick test_functional_insert_preserves;
        Alcotest.test_case "to_list" `Quick test_to_list;
        QCheck_alcotest.to_alcotest prop_search_agreement;
      ] );
  ]
