(* Shared test data, centred on the paper's running example
   (Figure 1a): the London / Amy Winehouse / Christopher Nolan
   tripleset. *)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let iri = Rdf.Term.iri
let lit s = Rdf.Term.literal s

(* The sixteen triples of Figure 1a. *)
let paper_triples =
  [
    Rdf.Triple.spo (x "London") (y "isPartOf") (iri (x "England"));
    Rdf.Triple.spo (x "England") (y "hasCapital") (iri (x "London"));
    Rdf.Triple.spo (x "Christopher_Nolan") (y "wasBornIn") (iri (x "London"));
    Rdf.Triple.spo (x "Christopher_Nolan") (y "livedIn") (iri (x "England"));
    Rdf.Triple.spo (x "Christopher_Nolan") (y "isPartOf")
      (iri (x "Dark_Knight_Trilogy"));
    Rdf.Triple.spo (x "London") (y "hasStadium") (iri (x "WembleyStadium"));
    Rdf.Triple.spo (x "WembleyStadium") (y "hasCapacityOf") (lit "90000");
    Rdf.Triple.spo (x "Amy_Winehouse") (y "wasBornIn") (iri (x "London"));
    Rdf.Triple.spo (x "Amy_Winehouse") (y "diedIn") (iri (x "London"));
    Rdf.Triple.spo (x "Amy_Winehouse") (y "wasPartOf") (iri (x "Music_Band"));
    Rdf.Triple.spo (x "Music_Band") (y "hasName") (lit "MCA_Band");
    Rdf.Triple.spo (x "Music_Band") (y "foundedIn") (lit "1994");
    Rdf.Triple.spo (x "Music_Band") (y "wasFormedIn") (iri (x "London"));
    Rdf.Triple.spo (x "Amy_Winehouse") (y "livedIn") (iri (x "United_States"));
    Rdf.Triple.spo (x "Amy_Winehouse") (y "wasMarriedTo")
      (iri (x "Blake_Fielder-Civil"));
    Rdf.Triple.spo (x "Blake_Fielder-Civil") (y "livedIn")
      (iri (x "United_States"));
  ]

(* The SPARQL query of Figure 2a, adjusted to the facts above so it has
   exactly one embedding (the paper's figure mixes 1934/1994 and
   hasName/hasAName typos; we use the data's values). *)
let paper_query_text =
  Printf.sprintf
    {|
    SELECT ?X0 ?X1 ?X2 ?X3 ?X4 ?X5 ?X6 WHERE {
      ?X0 <%s> ?X1 .
      ?X1 <%s> ?X2 .
      ?X2 <%s> ?X1 .
      ?X1 <%s> ?X4 .
      ?X3 <%s> ?X1 .
      ?X3 <%s> ?X1 .
      ?X3 <%s> ?X6 .
      ?X3 <%s> ?X5 .
      ?X5 <%s> ?X1 .
      ?X4 <%s> "90000" .
      ?X5 <%s> "MCA_Band" .
      ?X5 <%s> "1994" .
      ?X3 <%s> <%s> .
    }|}
    (y "wasBornIn") (y "isPartOf") (y "hasCapital") (y "hasStadium")
    (y "wasBornIn") (y "diedIn") (y "wasMarriedTo") (y "wasPartOf")
    (y "wasFormedIn") (y "hasCapacityOf") (y "hasName") (y "foundedIn")
    (y "livedIn") (x "United_States")

(* A small social-network style dataset exercised by several suites. *)
let social_triples =
  let knows = "http://xmlns.com/foaf/0.1/knows" in
  let name = "http://xmlns.com/foaf/0.1/name" in
  let person i = Printf.sprintf "http://example.org/p%d" i in
  List.concat
    [
      List.concat_map
        (fun (a, b) -> [ Rdf.Triple.spo (person a) knows (iri (person b)) ])
        [ (0, 1); (1, 2); (2, 0); (0, 2); (3, 0); (3, 1); (4, 3); (2, 4) ];
      List.init 5 (fun i ->
          Rdf.Triple.spo (person i) name (lit (Printf.sprintf "person-%d" i)));
    ]

let parse_query src = Sparql.Parser.parse src
