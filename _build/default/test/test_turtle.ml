(* Turtle reader tests. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse = Rdf.Turtle.parse_string

let test_basic_statement () =
  let ts = parse "<http://s> <http://p> <http://o> ." in
  checki "one triple" 1 (List.length ts);
  checks "subject" "<http://s>"
    (Rdf.Term.to_string (List.hd ts).Rdf.Triple.subject)

let test_prefix_forms () =
  let ts =
    parse
      {|@prefix ex: <http://example.org/> .
        PREFIX foo: <http://foo.org/>
        ex:a foo:b ex:c .|}
  in
  match ts with
  | [ { Rdf.Triple.subject = Rdf.Term.Iri s; predicate = Rdf.Term.Iri p; obj = Rdf.Term.Iri o } ] ->
      checks "subject expanded" "http://example.org/a" s;
      checks "predicate expanded" "http://foo.org/b" p;
      checks "object expanded" "http://example.org/c" o
  | _ -> Alcotest.fail "unexpected parse"

let test_empty_prefix () =
  let ts = parse {|@prefix : <http://d/> . :x :y :z .|} in
  checki "one triple" 1 (List.length ts);
  checks "default prefix" "<http://d/x>"
    (Rdf.Term.to_string (List.hd ts).Rdf.Triple.subject)

let test_semicolon_comma () =
  let ts =
    parse
      {|@prefix ex: <http://e/> .
        ex:s ex:p1 ex:o1 , ex:o2 ;
             ex:p2 ex:o3 ;
             .|}
  in
  checki "three triples" 3 (List.length ts)

let test_a_keyword () =
  let ts = parse {|@prefix ex: <http://e/> . ex:s a ex:C .|} in
  checks "a expands" "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"
    (Rdf.Term.to_string (List.hd ts).Rdf.Triple.predicate)

let test_literals () =
  let ts =
    parse
      {|@prefix ex: <http://e/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:s ex:str "hello" ;
             ex:lang "bonjour"@fr ;
             ex:typed "12"^^xsd:byte ;
             ex:int 42 ;
             ex:dec -3.5 ;
             ex:flag true .|}
  in
  checki "six triples" 6 (List.length ts);
  let objs =
    List.map
      (fun t ->
        match t.Rdf.Triple.obj with
        | Rdf.Term.Literal l -> l
        | _ -> Alcotest.fail "expected literal")
      ts
  in
  let nth i = List.nth objs i in
  checkb "plain" true ((nth 0).Rdf.Term.datatype = None);
  checkb "lang" true ((nth 1).lang = Some "fr");
  checks "typed" "http://www.w3.org/2001/XMLSchema#byte" (Option.get (nth 2).datatype);
  checks "integer" "42" (nth 3).value;
  checks "decimal" "-3.5" (nth 4).value;
  checks "boolean dt" "http://www.w3.org/2001/XMLSchema#boolean"
    (Option.get (nth 5).datatype)

let test_blank_nodes () =
  let ts =
    parse
      {|@prefix ex: <http://e/> .
        _:b ex:p ex:o .
        ex:s ex:q [ ex:r ex:t ; ex:u "v" ] .|}
  in
  (* 1 labelled + (2 inside the anon node) + 1 linking triple. *)
  checki "four triples" 4 (List.length ts);
  let anon_links =
    List.filter
      (fun t -> Rdf.Term.is_bnode t.Rdf.Triple.obj)
      ts
  in
  checki "one link to the anon node" 1 (List.length anon_links)

let test_base () =
  let ts = parse {|@base <http://base/> . <rel> <http://p> <other> .|} in
  match ts with
  | [ { Rdf.Triple.subject = Rdf.Term.Iri s; obj = Rdf.Term.Iri o; _ } ] ->
      checks "subject resolved" "http://base/rel" s;
      checks "object resolved" "http://base/other" o
  | _ -> Alcotest.fail "unexpected parse"

let test_comments () =
  let ts =
    parse "# leading comment\n<http://s> <http://p> <http://o> . # trailing\n"
  in
  checki "one triple" 1 (List.length ts)

let test_errors () =
  let bad src =
    match parse src with
    | exception Rdf.Turtle.Parse_error _ -> true
    | _ -> false
  in
  checkb "unbound prefix" true (bad "zz:a <http://p> <http://o> .");
  checkb "missing dot" true (bad "<http://s> <http://p> <http://o>");
  checkb "collection" true (bad "<http://s> <http://p> (1 2) .");
  checkb "triple quotes" true (bad {|<http://s> <http://p> """long""" .|});
  checkb "unknown directive" true (bad "@frobnicate <http://x> .");
  checkb "bare word" true (bad "<http://s> <http://p> banana .");
  (* Regression: a numeric literal in predicate position must be a
     Parse_error, not an escaped Triple.Invalid (found by fuzzing). *)
  checkb "literal predicate" true (bad "<http://s> 4 <http://o> .");
  checkb "literal predicate after semicolon" true
    (bad {|@prefix ex: <http://e/> . ex:a ex:p ex:b ;4ex:q "v" .|});
  checkb "bnode predicate" true (bad "<http://s> _:b <http://o> .")

let test_agreement_with_ntriples () =
  (* The paper fixture, serialized as N-Triples, is also valid Turtle. *)
  let nt = Rdf.Ntriples.to_string Fixtures.paper_triples in
  let via_turtle = parse nt in
  checkb "same triples" true
    (List.for_all2 Rdf.Triple.equal Fixtures.paper_triples via_turtle)

let test_engine_integration () =
  (* Load a Turtle document straight into AMbER. *)
  let ttl =
    {|@prefix ex: <http://e/> .
      ex:alice ex:knows ex:bob , ex:carol .
      ex:bob ex:knows ex:carol ;
             ex:age 33 .|}
  in
  let engine = Amber.Engine.build (parse ttl) in
  let a =
    Amber.Engine.query_string engine
      {|PREFIX ex: <http://e/>
        SELECT ?x WHERE { ex:alice ex:knows ?x . ?x ex:knows ex:carol . }|}
  in
  checki "bob found" 1 (List.length a.Amber.Engine.rows)

let suite =
  [
    ( "rdf.turtle",
      [
        Alcotest.test_case "basic" `Quick test_basic_statement;
        Alcotest.test_case "prefix forms" `Quick test_prefix_forms;
        Alcotest.test_case "empty prefix" `Quick test_empty_prefix;
        Alcotest.test_case "semicolon/comma" `Quick test_semicolon_comma;
        Alcotest.test_case "a keyword" `Quick test_a_keyword;
        Alcotest.test_case "literal forms" `Quick test_literals;
        Alcotest.test_case "blank nodes" `Quick test_blank_nodes;
        Alcotest.test_case "base" `Quick test_base;
        Alcotest.test_case "comments" `Quick test_comments;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "ntriples compatibility" `Quick test_agreement_with_ntriples;
        Alcotest.test_case "engine integration" `Quick test_engine_integration;
      ] );
  ]
