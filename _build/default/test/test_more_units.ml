(* Additional unit and property coverage: multigraph structural
   invariants, synopsis monotonicity, workload knobs, dataset specs,
   and small API corners not exercised elsewhere. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Multigraph structural invariants (property) --------------------- *)

let random_graph rng =
  let n = 2 + Datagen.Prng.int rng 12 in
  let b = Mgraph.Multigraph.Builder.create () in
  Mgraph.Multigraph.Builder.add_vertex b (n - 1);
  let edges = ref [] in
  for _ = 1 to Datagen.Prng.int rng 40 do
    let v = Datagen.Prng.int rng n
    and t = Datagen.Prng.int rng 5
    and v' = Datagen.Prng.int rng n in
    Mgraph.Multigraph.Builder.add_edge b v t v';
    edges := (v, t, v') :: !edges
  done;
  (Mgraph.Multigraph.Builder.build b, !edges)

let prop_adjacency_symmetry =
  QCheck.Test.make ~name:"out/in adjacency are mirror images" ~count:200
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create seed in
      let g, _ = random_graph rng in
      let ok = ref true in
      for v = 0 to Mgraph.Multigraph.vertex_count g - 1 do
        Array.iter
          (fun (v', types) ->
            (* every out edge of v appears as an in edge of v' *)
            let back =
              Mgraph.Multigraph.adjacency g Mgraph.Multigraph.In v'
            in
            let found =
              Array.exists
                (fun (u, types') -> u = v && Mgraph.Sorted_ints.equal types types')
                back
            in
            if not found then ok := false)
          (Mgraph.Multigraph.adjacency g Mgraph.Multigraph.Out v)
      done;
      !ok)

let prop_edge_membership =
  QCheck.Test.make ~name:"every added edge is queryable" ~count:200
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 1) in
      let g, edges = random_graph rng in
      List.for_all (fun (v, t, v') -> Mgraph.Multigraph.has_edge g v t v') edges)

let prop_fold_counts =
  QCheck.Test.make ~name:"fold_edges visits each atomic edge once" ~count:200
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 2) in
      let g, _ = random_graph rng in
      let folded =
        Mgraph.Multigraph.fold_edges (fun _ tys _ acc -> acc + Array.length tys) g 0
      in
      folded = Mgraph.Multigraph.triple_edge_count g)

(* Adding edges can only grow a vertex's synopsis (monotonicity keeps
   Lemma 1 usable as the graph grows). *)
let prop_synopsis_monotone =
  QCheck.Test.make ~name:"synopsis grows monotonically with edges" ~count:200
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Datagen.Prng.create (seed + 3) in
      let n = 4 in
      (* The builder is single-shot, so each step rebuilds the graph
         from the accumulated edge list. *)
      let edges = ref [] in
      let build es =
        let b = Mgraph.Multigraph.Builder.create () in
        Mgraph.Multigraph.Builder.add_vertex b (n - 1);
        List.iter (fun (v, t, v') -> Mgraph.Multigraph.Builder.add_edge b v t v') es;
        Mgraph.Multigraph.Builder.build b
      in
      let ok = ref true in
      for _ = 1 to 10 do
        let before = build !edges in
        let v = Datagen.Prng.int rng n
        and t = Datagen.Prng.int rng 6
        and v' = Datagen.Prng.int rng n in
        edges := (v, t, v') :: !edges;
        let after = build !edges in
        for u = 0 to n - 1 do
          let s_before = Mgraph.Synopsis.of_vertex before u in
          let s_after = Mgraph.Synopsis.of_vertex after u in
          (* after dominates before: every feature grew or held *)
          if not (Mgraph.Synopsis.dominates ~data:s_after ~query:s_before) then
            ok := false
        done
      done;
      !ok)

(* --- Rect/Rtree corners ----------------------------------------------- *)

let test_rect_enlargement () =
  let r = Rect.make ~lo:[| 0; 0 |] ~hi:[| 2; 2 |] in
  Alcotest.(check (float 1e-9))
    "no enlargement for contained" 0.0
    (Rect.enlargement r (Rect.make ~lo:[| 1; 1 |] ~hi:[| 2; 2 |]));
  checkb "positive enlargement" true
    (Rect.enlargement r (Rect.make ~lo:[| 0; 0 |] ~hi:[| 3; 2 |]) > 0.0)

let test_rtree_empty_and_heights () =
  let empty = Rtree.empty () in
  checki "empty size" 0 (Rtree.size empty);
  checki "empty height" 0 (Rtree.height empty);
  checkb "empty search" true (Rtree.search_containing empty (Rect.make ~lo:[| 0 |] ~hi:[| 1 |]) = []);
  let one = Rtree.insert empty (Rect.make ~lo:[| 0 |] ~hi:[| 1 |]) 42 in
  checki "one height" 1 (Rtree.height one)

(* --- Namespace / Dict corners ------------------------------------------ *)

let test_namespace_bindings () =
  let ns = Rdf.Namespace.common in
  let bindings = Rdf.Namespace.bindings ns in
  checkb "sorted by prefix" true
    (List.sort compare bindings = bindings);
  checkb "has rdf" true (List.mem_assoc "rdf" bindings)

let test_dict_iter () =
  let d = Mgraph.Dict.create () in
  List.iter (fun s -> ignore (Mgraph.Dict.intern d s)) [ "a"; "b"; "c" ];
  let order = ref [] in
  Mgraph.Dict.iter (fun s id -> order := (s, id) :: !order) d;
  checkb "iter in id order" true
    (List.rev !order = [ ("a", 0); ("b", 1); ("c", 2) ])

(* --- Workload knobs ------------------------------------------------------ *)

let test_workload_iri_rate () =
  let triples = Datagen.Lubm.generate ~universities:1 () in
  let corpus = Datagen.Workload.corpus triples in
  let count_constants rate =
    let queries =
      Datagen.Workload.generate ~seed:3 ~iri_rate:rate corpus
        ~shape:Datagen.Workload.Complex ~size:8 ~count:10
    in
    List.fold_left
      (fun acc ast ->
        List.fold_left
          (fun acc p ->
            let is_const = function Sparql.Ast.Iri _ -> 1 | _ -> 0 in
            acc + is_const p.Sparql.Ast.subject + is_const p.Sparql.Ast.obj)
          acc ast.Sparql.Ast.where)
      0 queries
  in
  checki "iri_rate 0 yields no constant entities" 0 (count_constants 0.0);
  checkb "higher rate yields more constants" true
    (count_constants 0.9 > count_constants 0.1)

let test_dataset_specs () =
  let specs = Datagen.Dataset.all ~scale:0.01 () in
  checki "three datasets" 3 (List.length specs);
  List.iter
    (fun spec ->
      let triples = spec.Datagen.Dataset.load () in
      checkb (spec.Datagen.Dataset.name ^ " non-empty") true (triples <> []))
    specs

(* --- ORDER BY stability --------------------------------------------------- *)

let test_order_by_stable () =
  (* Rows tied on the sort key keep their original relative order. *)
  let e = Amber.Engine.build Fixtures.paper_triples in
  let src =
    {|SELECT ?p ?c WHERE { ?p <http://dbpedia.org/ontology/livedIn> ?c } ORDER BY ?c|}
  in
  let a1 = Amber.Engine.query_string e src in
  let a2 = Amber.Engine.query_string e src in
  checkb "deterministic" true (a1.Amber.Engine.rows = a2.Amber.Engine.rows)

(* --- Engine.add-style rebuild (to_triples append) -------------------------- *)

let test_extend_database () =
  let e = Amber.Engine.build Fixtures.paper_triples in
  let extra =
    Rdf.Triple.spo "http://dbpedia.org/resource/Amy_Winehouse"
      "http://dbpedia.org/ontology/wasBornIn"
      (Rdf.Term.iri "http://dbpedia.org/resource/Camden")
  in
  let e2 =
    Amber.Engine.build (extra :: Amber.Database.to_triples (Amber.Engine.db e))
  in
  let count engine =
    let answer =
      Amber.Engine.query_string engine
        {|SELECT ?c WHERE { <http://dbpedia.org/resource/Amy_Winehouse> <http://dbpedia.org/ontology/wasBornIn> ?c }|}
    in
    List.length answer.Amber.Engine.rows
  in
  checki "original" 1 (count e);
  checki "extended" 2 (count e2)

let suite =
  [
    ( "more-units",
      [
        QCheck_alcotest.to_alcotest prop_adjacency_symmetry;
        QCheck_alcotest.to_alcotest prop_edge_membership;
        QCheck_alcotest.to_alcotest prop_fold_counts;
        QCheck_alcotest.to_alcotest prop_synopsis_monotone;
        Alcotest.test_case "rect enlargement" `Quick test_rect_enlargement;
        Alcotest.test_case "rtree corners" `Quick test_rtree_empty_and_heights;
        Alcotest.test_case "namespace bindings" `Quick test_namespace_bindings;
        Alcotest.test_case "dict iter" `Quick test_dict_iter;
        Alcotest.test_case "workload iri rate" `Quick test_workload_iri_rate;
        Alcotest.test_case "dataset specs" `Quick test_dataset_specs;
        Alcotest.test_case "order by deterministic" `Quick test_order_by_stable;
        Alcotest.test_case "extend database" `Quick test_extend_database;
      ] );
  ]
