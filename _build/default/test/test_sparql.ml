(* SPARQL lexer/parser/pretty-printer tests. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let parse = Sparql.Parser.parse

let test_select_basic () =
  let q = parse "SELECT ?x WHERE { ?x <http://p> <http://o> . }" in
  (match q.Sparql.Ast.select with
  | Sparql.Ast.Select_vars [ "x" ] -> ()
  | _ -> Alcotest.fail "bad selection");
  checki "one pattern" 1 (List.length q.where);
  checkb "no distinct" true (not q.distinct);
  Alcotest.(check (option int)) "no limit" None q.limit

let test_select_star_distinct_limit () =
  let q = parse "SELECT DISTINCT * WHERE { ?a <http://p> ?b } LIMIT 7" in
  checkb "star" true (q.Sparql.Ast.select = Sparql.Ast.Select_all);
  checkb "distinct" true q.distinct;
  Alcotest.(check (option int)) "limit" (Some 7) q.limit

let test_prefixes () =
  let q =
    parse
      {|PREFIX ex: <http://example.org/>
        SELECT ?x WHERE { ?x ex:knows ex:alice . }|}
  in
  match q.Sparql.Ast.where with
  | [ { predicate = Sparql.Ast.Iri p; obj = Sparql.Ast.Iri o; _ } ] ->
      checks "predicate expanded" "http://example.org/knows" p;
      checks "object expanded" "http://example.org/alice" o
  | _ -> Alcotest.fail "unexpected parse"

let test_default_prefixes () =
  let q = parse "SELECT ?x WHERE { ?x rdf:type foaf:Person . }" in
  match q.Sparql.Ast.where with
  | [ { predicate = Sparql.Ast.Iri p; obj = Sparql.Ast.Iri o; _ } ] ->
      checks "rdf default" "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" p;
      checks "foaf default" "http://xmlns.com/foaf/0.1/Person" o
  | _ -> Alcotest.fail "unexpected parse"

let test_a_keyword () =
  let q = parse "SELECT ?x WHERE { ?x a <http://C> . }" in
  match q.Sparql.Ast.where with
  | [ { predicate = Sparql.Ast.Iri p; _ } ] ->
      checks "a = rdf:type" "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" p
  | _ -> Alcotest.fail "unexpected parse"

let test_literals () =
  let q =
    parse
      {|SELECT ?x WHERE {
          ?x <http://p1> "plain" .
          ?x <http://p2> "tagged"@en .
          ?x <http://p3> "1"^^xsd:integer .
          ?x <http://p4> 42 .
          ?x <http://p5> 3.25 .
        }|}
  in
  let lits =
    List.filter_map
      (fun { Sparql.Ast.obj; _ } ->
        match obj with Sparql.Ast.Lit l -> Some l | _ -> None)
      q.Sparql.Ast.where
  in
  checki "five literals" 5 (List.length lits);
  let nth i = List.nth lits i in
  checkb "plain" true ((nth 0).Rdf.Term.datatype = None && (nth 0).lang = None);
  checkb "lang" true ((nth 1).lang = Some "en");
  checks "explicit datatype" "http://www.w3.org/2001/XMLSchema#integer"
    (Option.get (nth 2).datatype);
  checks "int literal value" "42" (nth 3).value;
  checks "int datatype" "http://www.w3.org/2001/XMLSchema#integer"
    (Option.get (nth 3).datatype);
  checks "decimal datatype" "http://www.w3.org/2001/XMLSchema#decimal"
    (Option.get (nth 4).datatype)

let test_semicolon_comma () =
  let q =
    parse
      {|SELECT * WHERE {
          ?x <http://p> ?a , ?b ;
             <http://q> ?c .
          ?y <http://r> ?x
        }|}
  in
  checki "expanded to four patterns" 4 (List.length q.Sparql.Ast.where);
  let subjects =
    List.map
      (fun { Sparql.Ast.subject; _ } ->
        match subject with Sparql.Ast.Var v -> v | _ -> "?")
      q.Sparql.Ast.where
  in
  checkb "x subject thrice" true (subjects = [ "x"; "x"; "x"; "y" ])

let test_variables_order () =
  let q = parse "SELECT * WHERE { ?b <http://p> ?a . ?a <http://q> ?c }" in
  checkb "first-occurrence order" true (Sparql.Ast.variables q = [ "b"; "a"; "c" ]);
  checkb "select * projects all" true
    (Sparql.Ast.selected_variables q = [ "b"; "a"; "c" ])

let test_is_basic () =
  let ok = parse "SELECT * WHERE { ?x <http://p> ?y }" in
  checkb "basic" true (Sparql.Ast.is_basic ok);
  let varpred = parse "SELECT * WHERE { ?x ?p ?y }" in
  checkb "variable predicate not basic" false (Sparql.Ast.is_basic varpred)

let test_errors () =
  let bad src =
    match Sparql.Parser.parse_result src with Error _ -> true | Ok _ -> false
  in
  checkb "missing where block" true (bad "SELECT ?x");
  checkb "unbound prefix" true (bad "SELECT ?x WHERE { ?x zz:p ?y }");
  checkb "garbage" true (bad "SELEC ?x WHERE { }");
  checkb "trailing tokens" true (bad "SELECT ?x WHERE { ?x <http://p> ?y } xyz");
  checkb "unterminated block" true (bad "SELECT ?x WHERE { ?x <http://p> ?y");
  checkb "no vars in select" true (bad "SELECT WHERE { ?x <http://p> ?y }")

let test_pretty_roundtrip () =
  let original = Fixtures.parse_query Fixtures.paper_query_text in
  let printed = Sparql.Ast.to_string original in
  let reparsed = parse printed in
  checki "same pattern count" (List.length original.Sparql.Ast.where)
    (List.length reparsed.Sparql.Ast.where);
  checkb "same patterns" true
    (List.for_all2
       (fun p1 p2 ->
         Sparql.Ast.term_equal p1.Sparql.Ast.subject p2.Sparql.Ast.subject
         && Sparql.Ast.term_equal p1.predicate p2.predicate
         && Sparql.Ast.term_equal p1.obj p2.obj)
       original.where reparsed.where);
  checkb "same selection" true (original.select = reparsed.select)

(* Property: pretty-printing any generated AST reparses to the same AST. *)
let gen_ast =
  QCheck.Gen.(
    let var = map (Printf.sprintf "X%d") (int_range 0 5) in
    let iri = map (Printf.sprintf "http://t/%d") (int_range 0 9) in
    let term =
      frequency
        [
          (3, map (fun v -> Sparql.Ast.Var v) var);
          (2, map (fun i -> Sparql.Ast.Iri i) iri);
          (1, map (fun n -> Sparql.Ast.Lit
                     { Rdf.Term.value = string_of_int n; datatype = None; lang = None })
               (int_range 0 99));
        ]
    in
    let pattern =
      map3
        (fun s p o -> Sparql.Ast.pattern s (Sparql.Ast.Iri p) o)
        term iri term
    in
    let fix_subject p =
      match p.Sparql.Ast.subject with
      | Sparql.Ast.Lit _ -> { p with Sparql.Ast.subject = Sparql.Ast.Var "S" }
      | _ -> p
    in
    map2
      (fun patterns distinct ->
        Sparql.Ast.make ~distinct Sparql.Ast.Select_all (List.map fix_subject patterns))
      (list_size (int_range 1 8) pattern)
      bool)

let prop_print_parse =
  QCheck.Test.make ~name:"pretty print reparses identically" ~count:300
    (QCheck.make ~print:Sparql.Ast.to_string gen_ast) (fun ast ->
      let back = parse (Sparql.Ast.to_string ast) in
      List.length back.Sparql.Ast.where = List.length ast.Sparql.Ast.where
      && List.for_all2
           (fun p1 p2 ->
             Sparql.Ast.term_equal p1.Sparql.Ast.subject p2.Sparql.Ast.subject
             && Sparql.Ast.term_equal p1.predicate p2.predicate
             && Sparql.Ast.term_equal p1.obj p2.obj)
           back.where ast.where
      && back.distinct = ast.distinct)

let suite =
  [
    ( "sparql.parser",
      [
        Alcotest.test_case "select basic" `Quick test_select_basic;
        Alcotest.test_case "star/distinct/limit" `Quick test_select_star_distinct_limit;
        Alcotest.test_case "prefixes" `Quick test_prefixes;
        Alcotest.test_case "default prefixes" `Quick test_default_prefixes;
        Alcotest.test_case "'a' keyword" `Quick test_a_keyword;
        Alcotest.test_case "literal forms" `Quick test_literals;
        Alcotest.test_case "semicolon and comma" `Quick test_semicolon_comma;
        Alcotest.test_case "variable order" `Quick test_variables_order;
        Alcotest.test_case "is_basic" `Quick test_is_basic;
        Alcotest.test_case "errors" `Quick test_errors;
        Alcotest.test_case "paper query roundtrip" `Quick test_pretty_roundtrip;
        QCheck_alcotest.to_alcotest prop_print_parse;
      ] );
  ]
