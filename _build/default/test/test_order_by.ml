(* ORDER BY / OFFSET tests: parsing, term ordering semantics, and
   agreement across the engines (ordered comparison, not set). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let x res = "http://dbpedia.org/resource/" ^ res
let y prop = "http://dbpedia.org/ontology/" ^ prop

let engine = lazy (Amber.Engine.build Fixtures.paper_triples)

(* --- parsing ------------------------------------------------------- *)

let test_parse_modifiers () =
  let q =
    Sparql.Parser.parse
      "SELECT ?a WHERE { ?a <http://p> ?b } ORDER BY ?a DESC(?b) ASC(?a) LIMIT 5 OFFSET 3"
  in
  checkb "keys" true
    (q.Sparql.Ast.order_by
    = [ ("a", Sparql.Ast.Asc); ("b", Sparql.Ast.Desc); ("a", Sparql.Ast.Asc) ]);
  Alcotest.(check (option int)) "limit" (Some 5) q.limit;
  Alcotest.(check (option int)) "offset" (Some 3) q.offset;
  (* OFFSET before LIMIT also accepted. *)
  let q2 =
    Sparql.Parser.parse "SELECT ?a WHERE { ?a <http://p> ?b } OFFSET 1 LIMIT 2"
  in
  Alcotest.(check (option int)) "offset first" (Some 1) q2.offset;
  Alcotest.(check (option int)) "then limit" (Some 2) q2.limit

let test_parse_errors () =
  let bad src =
    match Sparql.Parser.parse_result src with Error _ -> true | Ok _ -> false
  in
  checkb "ORDER without BY" true (bad "SELECT ?a WHERE { ?a <http://p> ?b } ORDER ?a");
  checkb "empty key list" true (bad "SELECT ?a WHERE { ?a <http://p> ?b } ORDER BY LIMIT 2");
  checkb "DESC without parens" true
    (bad "SELECT ?a WHERE { ?a <http://p> ?b } ORDER BY DESC ?a")

let test_pp_roundtrip () =
  let q =
    Sparql.Parser.parse
      "SELECT ?a WHERE { ?a <http://p> ?b } ORDER BY DESC(?a) LIMIT 4 OFFSET 2"
  in
  let q2 = Sparql.Parser.parse (Sparql.Ast.to_string q) in
  checkb "modifiers survive printing" true
    (q2.Sparql.Ast.order_by = q.Sparql.Ast.order_by
    && q2.limit = q.limit && q2.offset = q.offset)

(* --- term ordering --------------------------------------------------- *)

let test_order_compare () =
  let lt a b = Rdf.Term.order_compare a b < 0 in
  checkb "bnode < iri" true (lt (Rdf.Term.bnode "z") (Rdf.Term.iri "http://a"));
  checkb "iri < literal" true (lt (Rdf.Term.iri "http://z") (Rdf.Term.literal "a"));
  checkb "numeric literals numeric" true
    (lt (Rdf.Term.literal "9") (Rdf.Term.literal "10"));
  checkb "strings lexicographic" true
    (lt (Rdf.Term.literal "10a") (Rdf.Term.literal "9a"))

(* --- engine behaviour ------------------------------------------------- *)

let ordered_rows src =
  (Amber.Engine.query_string (Lazy.force engine) src).Amber.Engine.rows

let first_iri row =
  match row with
  | Some (Rdf.Term.Iri i) :: _ -> i
  | _ -> Alcotest.fail "expected an IRI in column 1"

let test_engine_order_asc_desc () =
  let src dir =
    Printf.sprintf {|SELECT ?p ?c WHERE { ?p <%s> ?c } ORDER BY %s|}
      (y "livedIn")
      (match dir with `Asc -> "?p" | `Desc -> "DESC(?p)")
  in
  let asc = List.map first_iri (ordered_rows (src `Asc)) in
  let desc = List.map first_iri (ordered_rows (src `Desc)) in
  checki "three rows" 3 (List.length asc);
  checkb "ascending sorted" true (asc = List.sort compare asc);
  checkb "desc is reverse of asc" true (desc = List.rev asc)

let test_engine_offset_limit () =
  let base =
    Printf.sprintf {|SELECT ?p WHERE { ?p <%s> ?c } ORDER BY ?p|} (y "livedIn")
  in
  let all = List.map first_iri (ordered_rows base) in
  let page =
    List.map first_iri (ordered_rows (base ^ " LIMIT 1 OFFSET 1"))
  in
  checkb "second page" true (page = [ List.nth all 1 ]);
  (* offset past the end *)
  checki "offset beyond end" 0 (List.length (ordered_rows (base ^ " OFFSET 9")));
  (* offset without order *)
  let no_order =
    Printf.sprintf {|SELECT ?p WHERE { ?p <%s> ?c } OFFSET 2|} (y "livedIn")
  in
  checki "plain offset drops rows" 1 (List.length (ordered_rows no_order))

let test_engines_agree_on_order () =
  let src =
    Printf.sprintf
      {|SELECT ?p ?c WHERE { ?p <%s> ?c } ORDER BY DESC(?c) ?p LIMIT 3|}
      (y "wasBornIn")
  in
  let ast = Fixtures.parse_query src in
  let amber_rows =
    (Amber.Engine.query (Lazy.force engine) ast).Amber.Engine.rows
  in
  let run (type e) (module E : Baselines.Engine_sig.S with type t = e) =
    let store = E.load Fixtures.paper_triples in
    (E.query store ast).Baselines.Answer.rows
  in
  List.iter
    (fun rows -> checkb "identical ordered rows" true (rows = amber_rows))
    [
      run (module Baselines.Triple_store);
      run (module Baselines.Column_store);
      run (module Baselines.Nested_loop);
      run (module Baselines.Sig_store);
    ]

let test_extended_order () =
  let a =
    Amber.Extended.query_string (Lazy.force engine)
      (Printf.sprintf
         {|SELECT ?p WHERE {
             { ?p <%s> <%s> } UNION { ?p <%s> <%s> }
           } ORDER BY ?p OFFSET 1 LIMIT 2|}
         (y "wasBornIn") (x "London") (y "livedIn") (x "United_States"))
  in
  let names = List.map first_iri a.Amber.Engine.rows in
  checkb "sorted page" true (names = List.sort compare names);
  checki "two rows" 2 (List.length names)

let test_order_with_unbound () =
  (* Selected-but-unbound variables sort lowest and do not crash. *)
  let a =
    Amber.Engine.query_string (Lazy.force engine)
      (Printf.sprintf {|SELECT ?ghost ?p WHERE { ?p <%s> ?c } ORDER BY ?ghost ?p|}
         (y "livedIn"))
  in
  checki "rows survive" 3 (List.length a.Amber.Engine.rows)

let suite =
  [
    ( "sparql.order_by",
      [
        Alcotest.test_case "parse modifiers" `Quick test_parse_modifiers;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
        Alcotest.test_case "term order" `Quick test_order_compare;
      ] );
    ( "amber.order_by",
      [
        Alcotest.test_case "asc/desc" `Quick test_engine_order_asc_desc;
        Alcotest.test_case "offset+limit" `Quick test_engine_offset_limit;
        Alcotest.test_case "engines agree" `Quick test_engines_agree_on_order;
        Alcotest.test_case "extended" `Quick test_extended_order;
        Alcotest.test_case "unbound keys" `Quick test_order_with_unbound;
      ] );
  ]
