test/test_sparql.ml: Alcotest Fixtures List Option Printf QCheck QCheck_alcotest Rdf Sparql
