test/test_mgraph.ml: Alcotest Amber Array Bool Fixtures Fun Gen Int List Mgraph QCheck QCheck_alcotest Rdf Set
