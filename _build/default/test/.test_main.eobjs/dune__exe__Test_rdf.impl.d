test/test_rdf.ml: Alcotest Filename Fixtures List Option QCheck QCheck_alcotest Rdf String Sys
