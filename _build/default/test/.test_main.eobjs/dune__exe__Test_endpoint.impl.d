test/test_endpoint.ml: Alcotest Amber Buffer Bytes Char Domain Endpoint Fixtures Lazy Printf String Unix
