test/test_rtree.ml: Alcotest Array Datagen Fun List Printf QCheck QCheck_alcotest Rect Rtree
