test/test_properties.ml: Alcotest Amber Array Datagen Fun Hashtbl List Printf QCheck QCheck_alcotest Rdf Reference Sparql
