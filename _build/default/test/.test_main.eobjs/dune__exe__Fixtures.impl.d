test/fixtures.ml: List Printf Rdf Sparql
