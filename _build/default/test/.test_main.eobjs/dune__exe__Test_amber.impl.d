test/test_amber.ml: Alcotest Amber Array Datagen Fixtures Format List Mgraph Option Printf Rdf Reference String
