test/test_storage.ml: Alcotest Amber Buffer Datagen Filename Fixtures List Printf QCheck QCheck_alcotest Rdf Reference Sparql String Sys Unix
