test/test_more_units.ml: Alcotest Amber Array Datagen Fixtures List Mgraph QCheck QCheck_alcotest Rdf Rect Rtree Sparql
