test/test_matcher.ml: Alcotest Amber Array Fixtures Fun List Mgraph Option Printf Rdf Seq
