test/test_datagen.ml: Alcotest Amber Array Baselines Datagen Fun Hashtbl Lazy List Mgraph Rdf Sparql
