test/test_turtle.ml: Alcotest Amber Fixtures List Option Rdf
