test/test_bench_util.ml: Alcotest Baselines Bench_util Fixtures List String
