test/test_cross.ml: Alcotest Amber Baselines Datagen Fixtures List Printf Rdf Reference Sparql String
