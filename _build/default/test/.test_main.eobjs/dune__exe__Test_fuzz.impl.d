test/test_fuzz.ml: Amber Buffer Bytes Char Datagen Fixtures Lazy List QCheck QCheck_alcotest Rdf Sparql String
