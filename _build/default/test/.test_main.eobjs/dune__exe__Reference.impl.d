test/reference.ml: Hashtbl List Rdf Sparql
