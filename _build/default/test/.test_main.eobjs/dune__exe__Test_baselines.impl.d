test/test_baselines.ml: Alcotest Amber Array Baselines Datagen Fixtures List Printf Reference
