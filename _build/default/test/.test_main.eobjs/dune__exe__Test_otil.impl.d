test/test_otil.ml: Alcotest Datagen Fun List Mgraph Otil QCheck QCheck_alcotest
