test/test_algebra_ref.ml: Alcotest Amber Datagen List Printf QCheck QCheck_alcotest Rdf Reference Sparql
