test/test_order_by.ml: Alcotest Amber Baselines Fixtures Lazy List Printf Rdf Sparql
