test/test_extended.ml: Alcotest Amber Datagen Fixtures Lazy List Printf Rdf Reference Sparql
