test/test_forms.ml: Alcotest Amber Buffer Char Endpoint Fixtures Lazy List Printf Rdf Sparql String
