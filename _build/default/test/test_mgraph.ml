(* Tests for dictionaries, sorted-set algebra, the multigraph and the
   signature/synopsis machinery of Sections 2 and 4.2. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_arr = Alcotest.(check (array int))

(* --- Dict ----------------------------------------------------------- *)

let test_dict_basics () =
  let d = Mgraph.Dict.create () in
  checki "first id" 0 (Mgraph.Dict.intern d "a");
  checki "second id" 1 (Mgraph.Dict.intern d "b");
  checki "repeat id" 0 (Mgraph.Dict.intern d "a");
  checki "size" 2 (Mgraph.Dict.size d);
  Alcotest.(check string) "inverse" "b" (Mgraph.Dict.value d 1);
  Alcotest.(check (option int)) "find" (Some 1) (Mgraph.Dict.find_opt d "b");
  Alcotest.(check (option int)) "find missing" None (Mgraph.Dict.find_opt d "zz");
  Alcotest.check_raises "bad id"
    (Invalid_argument "Dict.value: unknown id 5 (size 2)") (fun () ->
      ignore (Mgraph.Dict.value d 5))

let test_dict_growth () =
  let d = Mgraph.Dict.create ~initial_capacity:2 () in
  for i = 0 to 999 do
    checki "fresh ids" i (Mgraph.Dict.intern d (string_of_int i))
  done;
  checki "all retained" 1000 (Mgraph.Dict.size d);
  Alcotest.(check string) "deep inverse" "734" (Mgraph.Dict.value d 734);
  let bindings = Mgraph.Dict.to_list d in
  checki "to_list length" 1000 (List.length bindings);
  checkb "id order" true
    (List.for_all2 (fun (_, id) i -> id = i) bindings (List.init 1000 Fun.id))

(* --- Sorted_ints ---------------------------------------------------- *)

let test_sorted_ints_basics () =
  check_arr "of_list sorts+dedups" [| 1; 2; 5 |]
    (Mgraph.Sorted_ints.of_list [ 5; 1; 2; 1; 5 ]);
  checkb "mem hit" true (Mgraph.Sorted_ints.mem [| 1; 3; 9 |] 3);
  checkb "mem miss" false (Mgraph.Sorted_ints.mem [| 1; 3; 9 |] 4);
  checkb "subset yes" true (Mgraph.Sorted_ints.subset [| 1; 9 |] [| 1; 3; 9 |]);
  checkb "subset no" false (Mgraph.Sorted_ints.subset [| 1; 4 |] [| 1; 3; 9 |]);
  checkb "empty subset" true (Mgraph.Sorted_ints.subset [||] [| 1 |]);
  check_arr "inter" [| 3; 7 |] (Mgraph.Sorted_ints.inter [| 1; 3; 7 |] [| 3; 7; 9 |]);
  check_arr "union" [| 1; 3; 7; 9 |] (Mgraph.Sorted_ints.union [| 1; 7 |] [| 3; 9 |]);
  check_arr "diff" [| 1 |] (Mgraph.Sorted_ints.diff [| 1; 3; 7 |] [| 3; 7; 9 |]);
  check_arr "inter_many" [| 4 |]
    (Mgraph.Sorted_ints.inter_many [ [| 1; 4; 6 |]; [| 4; 6 |]; [| 2; 4 |] ]);
  Alcotest.check_raises "inter_many empty"
    (Invalid_argument "Sorted_ints.inter_many: empty list") (fun () ->
      ignore (Mgraph.Sorted_ints.inter_many []))

let arb_int_list = QCheck.(list_of_size (Gen.int_range 0 40) (int_range 0 30))

module IS = Set.Make (Int)

let set_of l = IS.of_list l
let arr_to_set a = IS.of_list (Array.to_list a)

let prop_inter =
  QCheck.Test.make ~name:"inter agrees with Set.inter" ~count:300
    (QCheck.pair arb_int_list arb_int_list) (fun (a, b) ->
      let got =
        arr_to_set
          (Mgraph.Sorted_ints.inter
             (Mgraph.Sorted_ints.of_list a)
             (Mgraph.Sorted_ints.of_list b))
      in
      IS.equal got (IS.inter (set_of a) (set_of b)))

let prop_union =
  QCheck.Test.make ~name:"union agrees with Set.union" ~count:300
    (QCheck.pair arb_int_list arb_int_list) (fun (a, b) ->
      IS.equal
        (arr_to_set
           (Mgraph.Sorted_ints.union
              (Mgraph.Sorted_ints.of_list a)
              (Mgraph.Sorted_ints.of_list b)))
        (IS.union (set_of a) (set_of b)))

let prop_diff =
  QCheck.Test.make ~name:"diff agrees with Set.diff" ~count:300
    (QCheck.pair arb_int_list arb_int_list) (fun (a, b) ->
      IS.equal
        (arr_to_set
           (Mgraph.Sorted_ints.diff
              (Mgraph.Sorted_ints.of_list a)
              (Mgraph.Sorted_ints.of_list b)))
        (IS.diff (set_of a) (set_of b)))

let prop_subset =
  QCheck.Test.make ~name:"subset agrees with Set.subset" ~count:300
    (QCheck.pair arb_int_list arb_int_list) (fun (a, b) ->
      Bool.equal
        (Mgraph.Sorted_ints.subset
           (Mgraph.Sorted_ints.of_list a)
           (Mgraph.Sorted_ints.of_list b))
        (IS.subset (set_of a) (set_of b)))

let prop_sorted =
  QCheck.Test.make ~name:"of_list output is strictly increasing" ~count:300
    arb_int_list (fun l ->
      Mgraph.Sorted_ints.is_sorted (Mgraph.Sorted_ints.of_list l))

(* --- Multigraph ------------------------------------------------------ *)

let small_graph () =
  let b = Mgraph.Multigraph.Builder.create () in
  (* 0 -t0,t2-> 1, 1 -t1-> 0, 0 -t0-> 2, attribute a0 on 2, loop on 3 *)
  Mgraph.Multigraph.Builder.add_edge b 0 0 1;
  Mgraph.Multigraph.Builder.add_edge b 0 2 1;
  Mgraph.Multigraph.Builder.add_edge b 0 2 1 (* duplicate, idempotent *);
  Mgraph.Multigraph.Builder.add_edge b 1 1 0;
  Mgraph.Multigraph.Builder.add_edge b 0 0 2;
  Mgraph.Multigraph.Builder.add_attribute b 2 0;
  Mgraph.Multigraph.Builder.add_edge b 3 1 3;
  Mgraph.Multigraph.Builder.build b

let test_multigraph_counts () =
  let g = small_graph () in
  checki "vertices" 4 (Mgraph.Multigraph.vertex_count g);
  checki "edge types" 3 (Mgraph.Multigraph.edge_type_count g);
  checki "multi-edges" 4 (Mgraph.Multigraph.multi_edge_count g);
  checki "atomic edges" 5 (Mgraph.Multigraph.triple_edge_count g)

let test_multigraph_adjacency () =
  let g = small_graph () in
  check_arr "multi-edge 0->1" [| 0; 2 |] (Mgraph.Multigraph.edge_types_between g 0 1);
  check_arr "multi-edge 1->0" [| 1 |] (Mgraph.Multigraph.edge_types_between g 1 0);
  check_arr "absent edge" [||] (Mgraph.Multigraph.edge_types_between g 2 0);
  checkb "has_edge yes" true (Mgraph.Multigraph.has_edge g 0 2 1);
  checkb "has_edge wrong type" false (Mgraph.Multigraph.has_edge g 0 1 1);
  check_arr "self loop" [| 1 |] (Mgraph.Multigraph.edge_types_between g 3 3);
  let out0 = Mgraph.Multigraph.adjacency g Mgraph.Multigraph.Out 0 in
  checki "out neighbours of 0" 2 (Array.length out0);
  let in1 = Mgraph.Multigraph.adjacency g Mgraph.Multigraph.In 1 in
  checki "in neighbours of 1" 1 (Array.length in1)

let test_multigraph_degree () =
  let g = small_graph () in
  (* 0 touches 1 (both directions) and 2: distinct neighbours = 2. *)
  checki "degree merges directions" 2 (Mgraph.Multigraph.degree g 0);
  checki "degree of satellite-like" 1 (Mgraph.Multigraph.degree g 2);
  checki "self loop counts once" 1 (Mgraph.Multigraph.degree g 3)

let test_multigraph_attributes () =
  let g = small_graph () in
  check_arr "attrs of 2" [| 0 |] (Mgraph.Multigraph.attributes g 2);
  check_arr "no attrs" [||] (Mgraph.Multigraph.attributes g 0);
  Alcotest.check_raises "vertex out of range"
    (Invalid_argument "Multigraph: vertex 9 out of range") (fun () ->
      ignore (Mgraph.Multigraph.attributes g 9))

let test_multigraph_fold_edges () =
  let g = small_graph () in
  let total =
    Mgraph.Multigraph.fold_edges (fun _ tys _ acc -> acc + Array.length tys) g 0
  in
  checki "fold sees all atomic edges" 5 total

(* --- Signature & Synopsis (paper Table 3 semantics) ----------------- *)

let paper_db () = Amber.Database.of_triples Fixtures.paper_triples

let vertex db name =
  match
    Amber.Database.vertex_of_term db
      (Rdf.Term.iri ("http://dbpedia.org/resource/" ^ name))
  with
  | Some v -> v
  | None -> Alcotest.failf "vertex %s missing" name

let test_synopsis_london () =
  let db = paper_db () in
  let g = Amber.Database.graph db in
  let syn = Mgraph.Synopsis.of_vertex g (vertex db "London") in
  (* Incoming: {hasCapital}, {wasBornIn}, {wasBornIn,diedIn}, {wasFormedIn}
     Outgoing: {isPartOf}, {hasStadium} — with edge types interned in
     first-use order: isPartOf=0 hasCapital=1 wasBornIn=2 livedIn=3
     hasStadium=4 diedIn=5 wasPartOf=6 wasFormedIn=7 wasMarriedTo=8. *)
  check_arr "london synopsis" [| 2; 4; -1; 7; 1; 2; 0; 4 |] syn

let test_synopsis_amy () =
  let db = paper_db () in
  let g = Amber.Database.graph db in
  let syn = Mgraph.Synopsis.of_vertex g (vertex db "Amy_Winehouse") in
  check_arr "amy synopsis"
    [| 0; 0; Mgraph.Synopsis.f3_empty; 0; 2; 5; -2; 8 |]
    syn

let test_synopsis_dominates_prunes () =
  let db = paper_db () in
  let g = Amber.Database.graph db in
  (* Query vertex u0 with a single outgoing wasBornIn edge (type 2). *)
  let query =
    Mgraph.Synopsis.of_signature
      (Mgraph.Signature.make ~incoming:[] ~outgoing:[ [| 2 |] ])
  in
  let dominates name expected =
    checkb name expected
      (Mgraph.Synopsis.dominates
         ~data:(Mgraph.Synopsis.of_vertex g (vertex db name))
         ~query)
  in
  dominates "Amy_Winehouse" true;
  dominates "Christopher_Nolan" true;
  (* Blake's only outgoing type is livedIn=3 > wasBornIn=2: pruned by f3. *)
  dominates "Blake_Fielder-Civil" false;
  (* England's single outgoing type hasCapital=1 < 2: pruned by f4. *)
  dominates "England" false;
  (* London (outgoing isPartOf=0, hasStadium=4) is a synopsis false
     positive — its [min,max] type range covers 2. Lemma 1 only promises
     no false negatives. *)
  dominates "London" true

let test_signature_sides () =
  let db = paper_db () in
  let g = Amber.Database.graph db in
  let s = Mgraph.Signature.of_vertex g (vertex db "Amy_Winehouse") in
  checki "no incoming" 0 (List.length s.Mgraph.Signature.incoming);
  checki "four outgoing multi-edges" 4 (List.length s.Mgraph.Signature.outgoing);
  let max_card =
    List.fold_left (fun m a -> max m (Array.length a)) 0 s.Mgraph.Signature.outgoing
  in
  checki "largest multi-edge" 2 max_card

let test_synopsis_empty_vertex () =
  let b = Mgraph.Multigraph.Builder.create () in
  Mgraph.Multigraph.Builder.add_vertex b 0;
  let g = Mgraph.Multigraph.Builder.build b in
  let e = Mgraph.Synopsis.f3_empty in
  check_arr "edgeless synopsis" [| 0; 0; e; 0; 0; 0; e; 0 |]
    (Mgraph.Synopsis.of_vertex g 0)

(* Lemma 1: every true candidate survives synopsis pruning. A data vertex
   that structurally embeds the query vertex's signature (superset of
   multi-edges) must dominate its synopsis. *)
let prop_lemma1 =
  let gen =
    QCheck.Gen.(
      let multi_edge = map Mgraph.Sorted_ints.of_list (list_size (int_range 1 3) (int_range 0 9)) in
      pair (list_size (int_range 0 4) multi_edge) (list_size (int_range 0 4) multi_edge))
  in
  QCheck.Test.make ~name:"lemma 1: signature containment implies domination"
    ~count:500 (QCheck.make gen) (fun (incoming, outgoing) ->
      let query_syn =
        Mgraph.Synopsis.of_signature (Mgraph.Signature.make ~incoming ~outgoing)
      in
      (* A data vertex whose signature is a superset (the query's
         multi-edges, one of them widened, plus extra multi-edges) must
         dominate the query synopsis. *)
      let widen = function
        | [] -> [ [| 0; 9 |] ]
        | first :: rest -> Mgraph.Sorted_ints.union first [| 0; 9 |] :: rest
      in
      let data_syn =
        Mgraph.Synopsis.of_signature
          (Mgraph.Signature.make
             ~incoming:(widen incoming @ [ [| 0; 9 |] ])
             ~outgoing:(widen outgoing @ [ [| 0; 9 |] ]))
      in
      Mgraph.Synopsis.dominates ~data:data_syn ~query:query_syn)

let suite =
  [
    ( "mgraph.dict",
      [
        Alcotest.test_case "basics" `Quick test_dict_basics;
        Alcotest.test_case "growth and inverse" `Quick test_dict_growth;
      ] );
    ( "mgraph.sorted_ints",
      [
        Alcotest.test_case "basics" `Quick test_sorted_ints_basics;
        QCheck_alcotest.to_alcotest prop_inter;
        QCheck_alcotest.to_alcotest prop_union;
        QCheck_alcotest.to_alcotest prop_diff;
        QCheck_alcotest.to_alcotest prop_subset;
        QCheck_alcotest.to_alcotest prop_sorted;
      ] );
    ( "mgraph.multigraph",
      [
        Alcotest.test_case "counts" `Quick test_multigraph_counts;
        Alcotest.test_case "adjacency" `Quick test_multigraph_adjacency;
        Alcotest.test_case "degree" `Quick test_multigraph_degree;
        Alcotest.test_case "attributes" `Quick test_multigraph_attributes;
        Alcotest.test_case "fold_edges" `Quick test_multigraph_fold_edges;
      ] );
    ( "mgraph.synopsis",
      [
        Alcotest.test_case "london row" `Quick test_synopsis_london;
        Alcotest.test_case "amy row" `Quick test_synopsis_amy;
        Alcotest.test_case "domination pruning" `Quick test_synopsis_dominates_prunes;
        Alcotest.test_case "signature sides" `Quick test_signature_sides;
        Alcotest.test_case "edgeless vertex" `Quick test_synopsis_empty_vertex;
        QCheck_alcotest.to_alcotest prop_lemma1;
      ] );
  ]
