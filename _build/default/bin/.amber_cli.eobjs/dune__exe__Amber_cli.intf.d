bin/amber_cli.mli:
