bin/datagen_cli.ml: Arg Cmd Cmdliner Datagen Filename List Printf Rdf Sparql Sys Term Unix
