bin/datagen_cli.mli:
