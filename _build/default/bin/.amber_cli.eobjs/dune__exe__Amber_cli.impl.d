bin/amber_cli.ml: Amber Arg Baselines Bench_util Cmd Cmdliner Endpoint Filename Format List Option Printf Rdf Sparql String Term Unix
